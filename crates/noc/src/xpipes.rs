//! The ×pipes-like wormhole packet-switched 2D-mesh NoC.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use ntg_mem::AddressMap;
use ntg_ocp::{LinkArena, LinkId, MasterPort, OcpRequest, OcpResponse, SlavePort};
use ntg_sim::observe::{Contention, LinkMetrics};
use ntg_sim::stats::Histogram;
use ntg_sim::{Activity, Component, Cycle};

use crate::{Interconnect, InterconnectKind};

/// Router port indices.
const NORTH: usize = 0;
const EAST: usize = 1;
const SOUTH: usize = 2;
const WEST: usize = 3;
const LOCAL: usize = 4;

fn opposite(port: usize) -> usize {
    match port {
        NORTH => SOUTH,
        SOUTH => NORTH,
        EAST => WEST,
        WEST => EAST,
        _ => unreachable!("local port has no opposite"),
    }
}

/// Static configuration of a [`XpipesNoc`].
///
/// Each master and each slave is attached through a network interface
/// (NI) to the local port of one mesh node; at most one NI per node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XpipesConfig {
    /// Mesh width (columns).
    pub width: u16,
    /// Mesh height (rows).
    pub height: u16,
    /// Node index (row-major) of each master NI.
    pub master_nodes: Vec<u16>,
    /// Node index (row-major) of each slave NI.
    pub slave_nodes: Vec<u16>,
    /// Router input FIFO depth in flits.
    pub input_fifo_flits: usize,
}

impl XpipesConfig {
    /// Default router input FIFO depth.
    pub const DEFAULT_FIFO_FLITS: usize = 4;

    /// Builds the smallest near-square mesh that fits `n_masters` +
    /// `n_slaves` NIs, attaching masters first in row-major order, then
    /// slaves.
    pub fn auto(n_masters: usize, n_slaves: usize) -> Self {
        let total = (n_masters + n_slaves).max(1) as u16;
        let mut width = 1u16;
        while width * width < total {
            width += 1;
        }
        let height = total.div_ceil(width);
        Self {
            width,
            height,
            master_nodes: (0..n_masters as u16).collect(),
            slave_nodes: (n_masters as u16..total).collect(),
            input_fifo_flits: Self::DEFAULT_FIFO_FLITS,
        }
    }

    /// Builds an explicit `width`×`height` mesh with the canonical NI
    /// layout ([`XpipesConfig::auto`]'s): masters on nodes
    /// `0..n_masters` in row-major order, slaves directly after.
    ///
    /// # Panics
    ///
    /// Panics if the mesh has fewer nodes than NIs to attach.
    pub fn with_dims(width: u16, height: u16, n_masters: usize, n_slaves: usize) -> Self {
        assert!(width >= 1 && height >= 1, "mesh must be non-empty");
        let total = n_masters + n_slaves;
        assert!(
            (width as usize) * (height as usize) >= total,
            "{width}x{height} mesh has {} nodes but needs {total} for its NIs",
            (width as usize) * (height as usize),
        );
        Self {
            width,
            height,
            master_nodes: (0..n_masters as u16).collect(),
            slave_nodes: (n_masters as u16..total as u16).collect(),
            input_fifo_flits: Self::DEFAULT_FIFO_FLITS,
        }
    }

    fn nodes(&self) -> u16 {
        self.width * self.height
    }

    fn validate(&self, n_masters: usize, n_slaves: usize) {
        assert!(
            self.width >= 1 && self.height >= 1,
            "mesh must be non-empty"
        );
        assert!(
            self.input_fifo_flits >= 1,
            "FIFOs must hold at least one flit"
        );
        assert_eq!(self.master_nodes.len(), n_masters, "one node per master");
        assert_eq!(self.slave_nodes.len(), n_slaves, "one node per slave");
        let mut seen = vec![false; self.nodes() as usize];
        for &n in self.master_nodes.iter().chain(self.slave_nodes.iter()) {
            assert!(n < self.nodes(), "node {n} outside the mesh");
            assert!(!seen[n as usize], "node {n} hosts two NIs");
            seen[n as usize] = true;
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Flit {
    pid: u32,
    is_head: bool,
    is_tail: bool,
    dst: u16,
}

#[derive(Debug)]
enum Payload {
    Req {
        req: OcpRequest,
        src_master: usize,
    },
    Resp {
        resp: OcpResponse,
        dst_master: usize,
    },
}

#[derive(Debug)]
struct Packet {
    payload: Payload,
    injected_at: Cycle,
}

struct Router {
    inputs: [VecDeque<Flit>; 5],
    out_reg: [Option<Flit>; 5],
    out_owner: [Option<usize>; 5],
    rr: [usize; 5],
}

impl Router {
    fn new() -> Self {
        Self {
            inputs: Default::default(),
            out_reg: [None; 5],
            out_owner: [None; 5],
            rr: [0; 5],
        }
    }

    fn is_empty(&self) -> bool {
        self.inputs.iter().all(VecDeque::is_empty) && self.out_reg.iter().all(Option::is_none)
    }
}

struct MasterNi {
    link: SlavePort,
    node: u16,
    tx: VecDeque<Flit>,
}

struct SlaveNi {
    link: MasterPort,
    node: u16,
    /// Fully reassembled request packets awaiting device service.
    pending: VecDeque<u32>,
    /// Request forwarded to the device: `(src_master, expects_response)`.
    busy: Option<(usize, bool)>,
    tx: VecDeque<Flit>,
}

#[derive(Debug, Clone, Copy)]
enum Attach {
    None,
    Master(usize),
    Slave(usize),
}

/// Bit 63 of an encoded boundary flit: slot occupied.
const FLIT_PRESENT: u64 = 1 << 63;

/// Packs a [`Flit`] into one word for a boundary slot's atomic.
fn encode_flit(f: Flit) -> u64 {
    FLIT_PRESENT
        | (u64::from(f.is_head) << 62)
        | (u64::from(f.is_tail) << 61)
        | (u64::from(f.dst) << 32)
        | u64::from(f.pid)
}

fn decode_flit(bits: u64) -> Flit {
    debug_assert!(bits & FLIT_PRESENT != 0);
    Flit {
        pid: bits as u32,
        is_head: bits & (1 << 62) != 0,
        is_tail: bits & (1 << 61) != 0,
        dst: (bits >> 32) as u16,
    }
}

/// One directed cross-partition link crossing.
///
/// A slot carries at most one flit per cycle — exactly the capacity of
/// the mesh link it stands in for. The exporter writes between the
/// partition scheduler's phase barriers, the importer drains at the start
/// of the following phase; `occupancy` mirrors the destination input
/// FIFO's end-of-cycle depth so the exporter can apply wormhole
/// backpressure without touching the other partition's state. All
/// accesses are relaxed: the phase barriers provide the ordering.
struct BoundarySlot {
    flit: AtomicU64,
    /// Rides along with a head flit: the packet payload changes owner
    /// when its head crosses the bisection.
    packet: Mutex<Option<Packet>>,
    occupancy: AtomicUsize,
}

impl BoundarySlot {
    fn new() -> Self {
        Self {
            flit: AtomicU64::new(0),
            packet: Mutex::new(None),
            occupancy: AtomicUsize::new(0),
        }
    }
}

/// The shared handoff fabric of a partitioned mesh: one [`BoundarySlot`]
/// per directed link crossing each row-band bisection.
///
/// Row-band partitioning means only NORTH/SOUTH links ever cross a
/// boundary, so boundary `b` (between region `b` and region `b + 1`)
/// owns `width` southbound plus `width` northbound slots.
pub struct MeshBoundary {
    width: usize,
    slots: Vec<BoundarySlot>,
}

impl MeshBoundary {
    fn new(width: usize, regions: usize) -> Self {
        let slots = (0..(regions - 1) * 2 * width)
            .map(|_| BoundarySlot::new())
            .collect();
        Self { width, slots }
    }

    /// Southbound slot `x` of boundary `b` (flit leaving region `b`'s
    /// last row through SOUTH, arriving in region `b + 1`'s first row).
    fn south(&self, b: usize, x: usize) -> &BoundarySlot {
        &self.slots[b * 2 * self.width + x]
    }

    /// Northbound slot `x` of boundary `b` (flit leaving region
    /// `b + 1`'s first row through NORTH).
    fn north(&self, b: usize, x: usize) -> &BoundarySlot {
        &self.slots[b * 2 * self.width + self.width + x]
    }
}

/// A region's handle onto the shared boundary fabric.
struct RegionBoundary {
    fabric: Arc<MeshBoundary>,
    /// This region's index in the row-band order.
    region: usize,
    /// Total regions in the partition.
    regions: usize,
}

/// One partition of a mesh: contiguous node, master-NI, slave-NI and
/// arena-link ranges (all `lo..hi`), produced by
/// [`XpipesNoc::partition_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSpec {
    /// Row-major mesh node range.
    pub nodes: (u16, u16),
    /// Master (and master-NI) index range.
    pub masters: (usize, usize),
    /// Slave (and slave-NI) index range.
    pub slaves: (usize, usize),
    /// `LinkArena` id range owned by the region.
    pub links: (u32, u32),
}

/// Aggregate NoC statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Packets injected (requests + responses).
    pub packets: u64,
    /// Individual flit link traversals.
    pub flit_hops: u64,
}

/// A wormhole-switched 2D-mesh NoC with XY routing, in the spirit of
/// ×pipes.
///
/// Requests are packetised at the issuing master's network interface
/// (head flit + one address/command flit + one flit per write-data word),
/// routed dimension-ordered (X first) through input-buffered routers, and
/// reassembled at the target slave's NI, which then performs the OCP
/// transaction against the device and — for reads — sends a response
/// packet back. Links carry one flit per cycle; a hop costs two cycles
/// (switch + link); backpressure is by input-FIFO occupancy, so congested
/// packets stall in place like real wormhole flow control.
///
/// Posted writes unblock the master as soon as its NI accepts the
/// request, which is earlier than on the [`AmbaBus`](crate::AmbaBus) —
/// exactly the kind of architecture-dependent timing difference the
/// paper's reactive traffic generators must absorb.
pub struct XpipesNoc {
    name: String,
    cfg: XpipesConfig,
    map: Arc<AddressMap>,
    routers: Vec<Router>,
    master_nis: Vec<MasterNi>,
    slave_nis: Vec<SlaveNi>,
    attach: Vec<Attach>,
    packets: HashMap<u32, Packet>,
    next_pid: u32,
    stats: NocStats,
    packet_latency: Histogram,
    transactions: u64,
    decode_errors: u64,
    conflicts: u64,
    grant_wait: Histogram,
    links: Vec<LinkMetrics>,
    /// First mesh node owned by this instance: 0 for a whole mesh, the
    /// region's band start for a split-off partition. `routers` holds
    /// nodes `node_base .. node_base + routers.len()`.
    node_base: u16,
    /// Global index of `master_nis[0]` (0 for a whole mesh).
    master_base: usize,
    /// Global index of `slave_nis[0]` (0 for a whole mesh).
    slave_base: usize,
    /// Cross-partition handoff; present only on split-off regions.
    boundary: Option<RegionBoundary>,
    /// Local indices of routers currently holding flits — the
    /// O(active-router) worklist the per-cycle stages iterate instead of
    /// scanning every router, so idle routers in a big mesh cost nothing.
    active: Vec<u32>,
    /// Membership flags for `active`, indexed by local router.
    in_active: Vec<bool>,
    /// Event-driven NI worklists (see
    /// [`Interconnect::set_event_driven`]); `None` scans every NI each
    /// tick.
    event: Option<EventState>,
}

/// Which NI reads a given arena link — the routing table behind
/// [`Interconnect::wake_link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NiTarget {
    None,
    Master(u32),
    Slave(u32),
}

/// Armed-NI worklists for event-driven operation: an NI is armed while
/// it has (or may have) per-cycle work, and every cross-component touch
/// that could give an idle NI work re-arms it via
/// [`Interconnect::wake_link`]. A disarmed NI's dense step is provably a
/// no-op, so skipping it is bit-identical to scanning it.
#[derive(Debug)]
struct EventState {
    /// Armed master-NI indices (local); sorted before each pass so the
    /// per-cycle side-effect order (packet-id minting, statistics)
    /// matches the dense ascending scan exactly.
    mni_armed: Vec<u32>,
    mni_in: Vec<bool>,
    /// Armed slave-NI indices (local), same discipline.
    sni_armed: Vec<u32>,
    sni_in: Vec<bool>,
    /// Arena link id → this instance's NI.
    targets: Vec<NiTarget>,
}

impl EventState {
    #[inline]
    fn arm_mni(&mut self, i: usize) {
        if !self.mni_in[i] {
            self.mni_in[i] = true;
            self.mni_armed.push(i as u32);
        }
    }

    #[inline]
    fn arm_sni(&mut self, i: usize) {
        if !self.sni_in[i] {
            self.sni_in[i] = true;
            self.sni_armed.push(i as u32);
        }
    }
}

impl XpipesNoc {
    /// Creates the NoC.
    ///
    /// Indexing conventions match [`AmbaBus::new`](crate::AmbaBus::new);
    /// `cfg` supplies the topology.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is inconsistent with the number of masters/slaves
    /// (see [`XpipesConfig`]).
    pub fn new(
        name: impl Into<String>,
        masters: Vec<SlavePort>,
        slaves: Vec<MasterPort>,
        map: Arc<AddressMap>,
        cfg: XpipesConfig,
    ) -> Self {
        cfg.validate(masters.len(), slaves.len());
        let mut attach = vec![Attach::None; cfg.nodes() as usize];
        let master_nis: Vec<MasterNi> = masters
            .into_iter()
            .zip(cfg.master_nodes.iter())
            .map(|(link, &node)| MasterNi {
                link,
                node,
                tx: VecDeque::new(),
            })
            .collect();
        let slave_nis: Vec<SlaveNi> = slaves
            .into_iter()
            .zip(cfg.slave_nodes.iter())
            .map(|(link, &node)| SlaveNi {
                link,
                node,
                pending: VecDeque::new(),
                busy: None,
                tx: VecDeque::new(),
            })
            .collect();
        let links = vec![LinkMetrics::default(); master_nis.len()];
        for (i, ni) in master_nis.iter().enumerate() {
            attach[ni.node as usize] = Attach::Master(i);
        }
        for (i, ni) in slave_nis.iter().enumerate() {
            attach[ni.node as usize] = Attach::Slave(i);
        }
        let routers: Vec<Router> = (0..cfg.nodes()).map(|_| Router::new()).collect();
        let nodes = routers.len();
        Self {
            name: name.into(),
            cfg,
            map,
            routers,
            master_nis,
            slave_nis,
            attach,
            packets: HashMap::new(),
            next_pid: 0,
            stats: NocStats::default(),
            packet_latency: Histogram::new("packet_latency_cycles"),
            transactions: 0,
            decode_errors: 0,
            conflicts: 0,
            grant_wait: Histogram::new("grant_wait_cycles"),
            links,
            node_base: 0,
            master_base: 0,
            slave_base: 0,
            boundary: None,
            active: Vec::with_capacity(nodes),
            in_active: vec![false; nodes],
            event: None,
        }
    }

    /// Accumulated NoC statistics.
    pub fn stats(&self) -> NocStats {
        self.stats
    }

    /// Packet latency histogram (injection of the head flit to delivery
    /// of the tail flit, in cycles).
    pub fn packet_latency(&self) -> &Histogram {
        &self.packet_latency
    }

    /// XY route: which output port a flit at `node` heading for
    /// `flit.dst` takes.
    fn route(&self, node: u16, dst: u16) -> usize {
        let w = self.cfg.width;
        let (x, y) = (node % w, node / w);
        let (dx, dy) = (dst % w, dst / w);
        if dx > x {
            EAST
        } else if dx < x {
            WEST
        } else if dy > y {
            SOUTH
        } else if dy < y {
            NORTH
        } else {
            LOCAL
        }
    }

    fn neighbor(&self, node: u16, port: usize) -> u16 {
        let w = self.cfg.width;
        match port {
            NORTH => node - w,
            SOUTH => node + w,
            EAST => node + 1,
            WEST => node - 1,
            _ => unreachable!("local port has no neighbor"),
        }
    }

    /// Packetises into `tx` in place, reusing the (empty) buffer's
    /// capacity — NI injection queues are on the per-cycle hot path and
    /// must not reallocate per packet.
    fn refill_flits(tx: &mut VecDeque<Flit>, pid: u32, len: u32, dst: u16) {
        debug_assert!(tx.is_empty());
        tx.extend((0..len).map(|i| Flit {
            pid,
            is_head: i == 0,
            is_tail: i == len - 1,
            dst,
        }));
    }

    /// Marks local router `r` as holding flits, enqueuing it on the
    /// active worklist if it was idle.
    #[inline]
    fn mark_active(&mut self, r: usize) {
        if !self.in_active[r] {
            self.in_active[r] = true;
            self.active.push(r as u32);
        }
    }

    /// Drops routers that drained this cycle from the active worklist.
    fn sweep_idle(&mut self) {
        let routers = &self.routers;
        let in_active = &mut self.in_active;
        self.active.retain(|&r| {
            let keep = !routers[r as usize].is_empty();
            if !keep {
                in_active[r as usize] = false;
            }
            keep
        });
    }

    /// Link stage: move output-register flits into downstream input
    /// FIFOs (or deliver locally), honouring backpressure.
    ///
    /// Iterates the active worklist, which may grow while iterating (a
    /// push activates the downstream router); a freshly activated router
    /// visited in the same pass has empty output registers, so the
    /// late visit is a no-op and results match a full scan exactly.
    fn link_stage(&mut self, net: &mut LinkArena, now: Cycle) {
        let mut idx = 0;
        while idx < self.active.len() {
            let r = self.active[idx] as usize;
            idx += 1;
            let node = self.node_base + r as u16;
            for p in 0..5 {
                let Some(flit) = self.routers[r].out_reg[p] else {
                    continue;
                };
                if p == LOCAL {
                    if self.deliver_local(net, node, flit, now) {
                        self.routers[r].out_reg[p] = None;
                    }
                    continue;
                }
                let nbr = self.neighbor(node, p) as usize;
                match (nbr).checked_sub(self.node_base as usize) {
                    Some(local) if local < self.routers.len() => {
                        let inp = opposite(p);
                        if self.routers[local].inputs[inp].len() < self.cfg.input_fifo_flits {
                            self.routers[local].inputs[inp].push_back(flit);
                            self.routers[r].out_reg[p] = None;
                            self.stats.flit_hops += 1;
                            self.mark_active(local);
                        }
                    }
                    _ => self.export_boundary(r, p, flit),
                }
            }
        }
    }

    /// Hands a flit leaving this region across the bisection.
    ///
    /// The slot's occupancy mirror carries the destination FIFO's
    /// end-of-previous-cycle depth — exactly the value a serial
    /// `link_stage` would have read, since downstream pops only happen in
    /// the (later) switch stage — so backpressure decisions stay
    /// bit-identical to serial execution.
    fn export_boundary(&mut self, r: usize, port: usize, flit: Flit) {
        let node = self.node_base + r as u16;
        let full = {
            let b = self
                .boundary
                .as_ref()
                .expect("flit crossed a region edge with no boundary fabric");
            let x = (node % self.cfg.width) as usize;
            let slot = match port {
                SOUTH => b.fabric.south(b.region, x),
                NORTH => b.fabric.north(b.region - 1, x),
                _ => unreachable!("row-band regions only split north/south links"),
            };
            slot.occupancy.load(Ordering::Relaxed) >= self.cfg.input_fifo_flits
        };
        if full {
            return;
        }
        // The head flit carries its packet across: payload ownership
        // follows the wormhole's leading edge.
        let packet = flit.is_head.then(|| {
            self.packets
                .remove(&flit.pid)
                .expect("exported head flit of unknown packet")
        });
        let b = self.boundary.as_ref().expect("checked above");
        let x = (node % self.cfg.width) as usize;
        let slot = match port {
            SOUTH => b.fabric.south(b.region, x),
            NORTH => b.fabric.north(b.region - 1, x),
            _ => unreachable!(),
        };
        if let Some(p) = packet {
            *slot.packet.lock().expect("boundary mutex poisoned") = Some(p);
        }
        slot.flit.store(encode_flit(flit), Ordering::Relaxed);
        self.routers[r].out_reg[port] = None;
        self.stats.flit_hops += 1;
    }

    /// Drains inbound boundary slots into this region's edge FIFOs.
    ///
    /// Runs at the start of the switch phase, after the barrier that
    /// ends every region's link phase: the flits land in their FIFOs
    /// before any switch stage runs, exactly as a serial `link_stage`
    /// pass would have left them. A push never overflows — the exporter
    /// already applied this FIFO's backpressure through the mirror.
    fn import_boundary(&mut self) {
        let Some(b) = self.boundary.as_ref() else {
            return;
        };
        let (fabric, region, regions) = (Arc::clone(&b.fabric), b.region, b.regions);
        let w = self.cfg.width as usize;
        for x in 0..w {
            // From the boundary above: southbound flits into our first row.
            if region > 0 {
                let slot = fabric.south(region - 1, x);
                let bits = slot.flit.swap(0, Ordering::Relaxed);
                if bits & FLIT_PRESENT != 0 {
                    let flit = decode_flit(bits);
                    if flit.is_head {
                        let packet = slot
                            .packet
                            .lock()
                            .expect("boundary mutex poisoned")
                            .take()
                            .expect("imported head flit without packet");
                        self.packets.insert(flit.pid, packet);
                    }
                    self.routers[x].inputs[NORTH].push_back(flit);
                    self.mark_active(x);
                }
            }
            // From the boundary below: northbound flits into our last row.
            if region + 1 < regions {
                let slot = fabric.north(region, x);
                let bits = slot.flit.swap(0, Ordering::Relaxed);
                if bits & FLIT_PRESENT != 0 {
                    let flit = decode_flit(bits);
                    if flit.is_head {
                        let packet = slot
                            .packet
                            .lock()
                            .expect("boundary mutex poisoned")
                            .take()
                            .expect("imported head flit without packet");
                        self.packets.insert(flit.pid, packet);
                    }
                    let local = self.routers.len() - w + x;
                    self.routers[local].inputs[SOUTH].push_back(flit);
                    self.mark_active(local);
                }
            }
        }
    }

    /// Publishes end-of-cycle occupancy of this region's edge FIFOs into
    /// the boundary mirrors the upstream exporters read next cycle.
    fn publish_boundary_occupancy(&self) {
        let Some(b) = self.boundary.as_ref() else {
            return;
        };
        let w = self.cfg.width as usize;
        for x in 0..w {
            if b.region > 0 {
                // Southbound flits arrive on our first row's NORTH input.
                let depth = self.routers[x].inputs[NORTH].len();
                b.fabric
                    .south(b.region - 1, x)
                    .occupancy
                    .store(depth, Ordering::Relaxed);
            }
            if b.region + 1 < b.regions {
                // Northbound flits arrive on our last row's SOUTH input.
                let local = self.routers.len() - w + x;
                let depth = self.routers[local].inputs[SOUTH].len();
                b.fabric
                    .north(b.region, x)
                    .occupancy
                    .store(depth, Ordering::Relaxed);
            }
        }
    }

    /// Delivers a flit to the NI on `node`. Returns false on
    /// backpressure.
    fn deliver_local(&mut self, net: &mut LinkArena, node: u16, flit: Flit, now: Cycle) -> bool {
        match self.attach[node as usize] {
            Attach::None => panic!("flit routed to node {node} which has no NI"),
            Attach::Master(i) => {
                // Master NIs always sink response flits.
                if flit.is_tail {
                    let packet = self
                        .packets
                        .remove(&flit.pid)
                        .expect("tail of unknown packet");
                    self.packet_latency.record(now - packet.injected_at);
                    let Payload::Resp { resp, dst_master } = packet.payload else {
                        panic!("request packet delivered to a master NI")
                    };
                    debug_assert_eq!(dst_master, i);
                    self.master_nis[i - self.master_base]
                        .link
                        .push_response(net, resp, now);
                }
                true
            }
            Attach::Slave(i) => {
                // Bounded reassembly: refuse new flits while two complete
                // packets already wait, creating wormhole backpressure.
                let local = i - self.slave_base;
                if self.slave_nis[local].pending.len() >= 2 {
                    return false;
                }
                if flit.is_tail {
                    self.slave_nis[local].pending.push_back(flit.pid);
                    // The link stage runs before the NI stage, so the NI
                    // can serve this packet in the same cycle it would
                    // under a dense scan.
                    if let Some(ev) = &mut self.event {
                        ev.arm_sni(local);
                    }
                }
                true
            }
        }
    }

    /// Switch stage: move one flit per input from input FIFOs into output
    /// registers, wormhole style.
    fn switch_stage(&mut self) {
        // Switching moves flits within one router, so the worklist
        // cannot grow mid-pass.
        for idx in 0..self.active.len() {
            let r = self.active[idx] as usize;
            let node = self.node_base + r as u16;
            let mut input_used = [false; 5];
            for p in 0..5 {
                let want = |flit: &Flit, me: &Self| me.route(node, flit.dst) == p;
                // Heads currently requesting this output; every head that
                // does not advance this cycle is a contention event
                // (blocked by the output register, an owning packet, or a
                // lost arbitration round).
                let wanters = (0..5)
                    .filter(|&inp| {
                        !input_used[inp]
                            && matches!(
                                self.routers[r].inputs[inp].front(),
                                Some(f) if f.is_head && want(f, self)
                            )
                    })
                    .count() as u64;
                let router = &mut self.routers[r];
                if router.out_reg[p].is_some() {
                    self.conflicts += wanters;
                    continue;
                }
                // Continue an owned packet first.
                if let Some(owner) = router.out_owner[p] {
                    self.conflicts += wanters;
                    if input_used[owner] {
                        continue;
                    }
                    if let Some(&flit) = router.inputs[owner].front() {
                        debug_assert!(!flit.is_head || router.out_owner[p].is_some());
                        router.inputs[owner].pop_front();
                        router.out_reg[p] = Some(flit);
                        input_used[owner] = true;
                        if flit.is_tail {
                            router.out_owner[p] = None;
                        }
                    }
                    continue;
                }
                // Otherwise arbitrate among heads requesting this output.
                self.conflicts += wanters.saturating_sub(1);
                let start = self.routers[r].rr[p];
                let claimed = (0..5).map(|k| (start + k) % 5).find(|&inp| {
                    !input_used[inp]
                        && matches!(
                            self.routers[r].inputs[inp].front(),
                            Some(f) if f.is_head && want(f, self)
                        )
                });
                if let Some(inp) = claimed {
                    let router = &mut self.routers[r];
                    let flit = router.inputs[inp].pop_front().expect("front checked");
                    router.out_reg[p] = Some(flit);
                    input_used[inp] = true;
                    if !flit.is_tail {
                        router.out_owner[p] = Some(inp);
                    }
                    router.rr[p] = (inp + 1) % 5;
                }
            }
        }
    }

    /// NI stage: accept fresh requests, feed injection FIFOs, talk to
    /// devices.
    ///
    /// In event mode only armed NIs are stepped; the disarm conditions
    /// guarantee a skipped NI's step would have been a no-op, and the
    /// armed lists are sorted so side effects (packet-id minting,
    /// statistics) land in the same ascending-index order as the dense
    /// scan.
    fn ni_stage(&mut self, net: &mut LinkArena, now: Cycle) {
        if let Some(mut ev) = self.event.take() {
            ev.mni_armed.sort_unstable();
            for k in 0..ev.mni_armed.len() {
                self.mni_step(ev.mni_armed[k] as usize, net, now);
            }
            {
                let mni_in = &mut ev.mni_in;
                let nis = &self.master_nis;
                ev.mni_armed.retain(|&i| {
                    let ni = &nis[i as usize];
                    // Keep while there are flits to inject or a request
                    // (even a future-visible one) to accept; anything
                    // that gives an idle master NI new work asserts a
                    // request, which re-arms it via `wake_link`.
                    let keep = !ni.tx.is_empty() || ni.link.request_visible_at(net).is_some();
                    if !keep {
                        mni_in[i as usize] = false;
                    }
                    keep
                });
            }
            ev.sni_armed.sort_unstable();
            for k in 0..ev.sni_armed.len() {
                self.sni_step(ev.sni_armed[k] as usize, net, now);
            }
            {
                let sni_in = &mut ev.sni_in;
                let nis = &self.slave_nis;
                ev.sni_armed.retain(|&i| {
                    let ni = &nis[i as usize];
                    // Keep while injecting or holding reassembled
                    // packets. A busy-waiting NI (`busy` set, queues
                    // empty) polls `take_response`/`take_accept`, and
                    // both return `None` until the slave writes the
                    // link — which re-arms it via `wake_link` — so
                    // disarming it skips only no-op polls.
                    let keep = !ni.tx.is_empty() || !ni.pending.is_empty();
                    if !keep {
                        sni_in[i as usize] = false;
                    }
                    keep
                });
            }
            self.event = Some(ev);
            return;
        }
        // Master NIs: accept a new request once the previous packet fully
        // left the NI.
        for i in 0..self.master_nis.len() {
            self.mni_step(i, net, now);
        }
        // Slave NIs: service reassembled requests through the device
        // link; packetise read responses.
        for i in 0..self.slave_nis.len() {
            self.sni_step(i, net, now);
        }
    }

    /// One master NI's per-cycle work: accept a fresh request once the
    /// previous packet fully left the NI, inject at most one flit.
    fn mni_step(&mut self, i: usize, net: &mut LinkArena, now: Cycle) {
        // Accept a fresh request once the previous packet left.
        if self.master_nis[i].tx.is_empty() {
            if let Some((addr, _, _)) = self.master_nis[i].link.peek_meta(net, now) {
                match self.map.slave_for(addr) {
                    None => {
                        let req = self.master_nis[i]
                            .link
                            .accept_request(net, now)
                            .expect("peeked request is still there");
                        self.decode_errors += 1;
                        if req.cmd.expects_response() {
                            self.master_nis[i].link.push_response(
                                net,
                                OcpResponse::error(req.tag),
                                now,
                            );
                        }
                    }
                    Some(slave) => {
                        let stall = now
                            - self.master_nis[i]
                                .link
                                .request_visible_at(net)
                                .expect("peeked request is visible");
                        let req = self.master_nis[i]
                            .link
                            .accept_request(net, now)
                            .expect("peeked request is still there");
                        let global = self.master_base + i;
                        self.transactions += 1;
                        self.grant_wait.record(stall);
                        self.links[global].grants += 1;
                        self.links[global].stall_cycles += stall;
                        // The destination may live in another region,
                        // so resolve its node from the full config.
                        let dst = self.cfg.slave_nodes[slave.0 as usize];
                        let len = 2 + req.data.len() as u32;
                        self.links[global].busy_cycles += u64::from(len);
                        let pid = self.next_pid;
                        self.next_pid += 1;
                        self.packets.insert(
                            pid,
                            Packet {
                                payload: Payload::Req {
                                    req,
                                    src_master: global,
                                },
                                injected_at: now,
                            },
                        );
                        Self::refill_flits(&mut self.master_nis[i].tx, pid, len, dst);
                        self.stats.packets += 1;
                    }
                }
            }
        }
        // Inject at most one flit per cycle.
        let node = self.master_nis[i].node as usize - self.node_base as usize;
        if !self.master_nis[i].tx.is_empty()
            && self.routers[node].inputs[LOCAL].len() < self.cfg.input_fifo_flits
        {
            let flit = self.master_nis[i].tx.pop_front().expect("non-empty");
            self.routers[node].inputs[LOCAL].push_back(flit);
            self.mark_active(node);
        }
    }

    /// One slave NI's per-cycle work: complete the in-flight device
    /// transaction, start the next reassembled request, inject at most
    /// one response flit.
    fn sni_step(&mut self, i: usize, net: &mut LinkArena, now: Cycle) {
        // Completion?
        if let Some((src_master, expects)) = self.slave_nis[i].busy {
            if expects {
                if let Some(resp) = self.slave_nis[i].link.take_response(net, now) {
                    // `src_master` is a global index; its NI may live
                    // in another region.
                    let dst = self.cfg.master_nodes[src_master];
                    let len = 1 + resp.data.len() as u32;
                    self.links[src_master].busy_cycles += u64::from(len);
                    let pid = self.next_pid;
                    self.next_pid += 1;
                    self.packets.insert(
                        pid,
                        Packet {
                            payload: Payload::Resp {
                                resp,
                                dst_master: src_master,
                            },
                            injected_at: now,
                        },
                    );
                    Self::refill_flits(&mut self.slave_nis[i].tx, pid, len, dst);
                    self.stats.packets += 1;
                    self.slave_nis[i].busy = None;
                }
            } else if self.slave_nis[i].link.take_accept(net, now).is_some() {
                self.slave_nis[i].busy = None;
            }
        }
        // Start the next pending request once the link and the
        // response path are free.
        if self.slave_nis[i].busy.is_none()
            && self.slave_nis[i].tx.is_empty()
            && !self.slave_nis[i].link.request_pending(net)
        {
            if let Some(pid) = self.slave_nis[i].pending.pop_front() {
                let packet = self.packets.remove(&pid).expect("pending packet exists");
                self.packet_latency
                    .record(now.saturating_sub(packet.injected_at));
                let Payload::Req { req, src_master } = packet.payload else {
                    panic!("response packet delivered to a slave NI")
                };
                let expects = req.cmd.expects_response();
                self.slave_nis[i].link.forward_request(net, req, now);
                self.slave_nis[i].busy = Some((src_master, expects));
            }
        }
        // Inject at most one response flit per cycle.
        let node = self.slave_nis[i].node as usize - self.node_base as usize;
        if !self.slave_nis[i].tx.is_empty()
            && self.routers[node].inputs[LOCAL].len() < self.cfg.input_fifo_flits
        {
            let flit = self.slave_nis[i].tx.pop_front().expect("non-empty");
            self.routers[node].inputs[LOCAL].push_back(flit);
            self.mark_active(node);
        }
    }

    /// Phase A of a partitioned cycle: the link stage, with boundary
    /// crossings exported into the shared handoff slots. On a whole
    /// (unsplit) mesh this is exactly the serial link stage.
    pub fn phase_link(&mut self, net: &mut LinkArena, now: Cycle) {
        self.link_stage(net, now);
    }

    /// Phase B of a partitioned cycle: import boundary flits, then run
    /// the switch and NI stages and publish end-of-cycle occupancy
    /// mirrors. Running [`XpipesNoc::phase_link`] then this method on a
    /// whole mesh is exactly one serial tick.
    pub fn phase_switch_ni(&mut self, net: &mut LinkArena, now: Cycle) {
        self.import_boundary();
        self.switch_stage();
        self.ni_stage(net, now);
        self.sweep_idle();
        self.publish_boundary_occupancy();
    }

    /// Plans a row-band partition of this mesh into at most `threads`
    /// regions of contiguous rows (balanced by row count).
    ///
    /// Returns `None` when the mesh cannot be partitioned: fewer than
    /// two usable bands, or an NI layout other than the canonical
    /// row-major one (masters on nodes `0..n`, slaves directly after)
    /// on which node, NI and link ranges all stay contiguous.
    pub fn partition_plan(&self, threads: usize) -> Option<Vec<RegionSpec>> {
        let (w, h) = (self.cfg.width as usize, self.cfg.height as usize);
        let p = threads.min(h);
        if p < 2 {
            return None;
        }
        let (n, s) = (self.master_nis.len(), self.slave_nis.len());
        let canonical = self
            .cfg
            .master_nodes
            .iter()
            .enumerate()
            .all(|(i, &nd)| nd as usize == i)
            && self
                .cfg
                .slave_nodes
                .iter()
                .enumerate()
                .all(|(i, &nd)| nd as usize == n + i);
        if !canonical {
            return None;
        }
        let (band, extra) = (h / p, h % p);
        let mut specs = Vec::with_capacity(p);
        let mut row = 0usize;
        let mut prev_link_hi: Option<u32> = None;
        for k in 0..p {
            let rows = band + usize::from(k < extra);
            let (lo, hi) = (row * w, (row + rows) * w);
            row += rows;
            let masters = (lo.min(n), hi.min(n));
            let slaves = (lo.max(n).min(n + s) - n, hi.max(n).min(n + s) - n);
            // The region's arena range spans its NIs' link ids; ranges
            // must be contiguous and ascending for `LinkArena::split_off`.
            let mut ids: Vec<u32> = (masters.0..masters.1)
                .map(|i| self.master_nis[i].link.id().index() as u32)
                .chain((slaves.0..slaves.1).map(|i| self.slave_nis[i].link.id().index() as u32))
                .collect();
            ids.sort_unstable();
            let links = match (ids.first(), ids.last()) {
                (Some(&first), Some(&last)) => {
                    if (last - first) as usize + 1 != ids.len() {
                        return None; // NI links are not a contiguous range
                    }
                    (first, last + 1)
                }
                // A band of unattached nodes owns no links.
                _ => {
                    let at = prev_link_hi.unwrap_or(0);
                    (at, at)
                }
            };
            if let Some(prev) = prev_link_hi {
                if links.0 != prev {
                    return None; // regions' link ranges must tile the arena
                }
            } else if links.0 != 0 {
                return None;
            }
            prev_link_hi = Some(links.1);
            specs.push(RegionSpec {
                nodes: (lo as u16, hi as u16),
                masters,
                slaves,
                links,
            });
        }
        Some(specs)
    }

    /// Splits this mesh into per-region instances per `specs`, moving
    /// each band's routers and NIs out of `self`. The returned regions
    /// share a fresh [`MeshBoundary`]; ticking region `k` with the
    /// two-phase protocol advances exactly the state a serial tick would
    /// advance for its band. Reassemble with [`XpipesNoc::absorb`].
    ///
    /// # Panics
    ///
    /// Panics if called on a region, on a mesh with traffic in flight,
    /// or with specs that do not tile this mesh.
    pub fn split(&mut self, specs: &[RegionSpec]) -> Vec<XpipesNoc> {
        assert!(self.boundary.is_none(), "cannot split a region");
        assert!(
            self.packets.is_empty() && self.routers.iter().all(Router::is_empty),
            "split requires a drained mesh"
        );
        assert_eq!(
            specs.last().map(|s| s.nodes.1),
            Some(self.cfg.nodes()),
            "specs must cover the whole mesh"
        );
        let fabric = Arc::new(MeshBoundary::new(self.cfg.width as usize, specs.len()));
        let mut routers = std::mem::take(&mut self.routers).into_iter();
        let mut master_nis = std::mem::take(&mut self.master_nis).into_iter();
        let mut slave_nis = std::mem::take(&mut self.slave_nis).into_iter();
        let total_masters = self.links.len();
        specs
            .iter()
            .enumerate()
            .map(|(k, spec)| {
                let nodes = (spec.nodes.1 - spec.nodes.0) as usize;
                XpipesNoc {
                    name: format!("{}#r{k}", self.name),
                    cfg: self.cfg.clone(),
                    map: Arc::clone(&self.map),
                    routers: routers.by_ref().take(nodes).collect(),
                    master_nis: master_nis
                        .by_ref()
                        .take(spec.masters.1 - spec.masters.0)
                        .collect(),
                    slave_nis: slave_nis
                        .by_ref()
                        .take(spec.slaves.1 - spec.slaves.0)
                        .collect(),
                    attach: self.attach.clone(),
                    packets: HashMap::new(),
                    // Regions mint packet ids in disjoint tagged spaces;
                    // ids are internal keys only, so tagging cannot leak
                    // into any deterministic output.
                    next_pid: (k as u32 + 1) << 28,
                    stats: NocStats::default(),
                    packet_latency: Histogram::new("packet_latency_cycles"),
                    transactions: 0,
                    decode_errors: 0,
                    conflicts: 0,
                    grant_wait: Histogram::new("grant_wait_cycles"),
                    links: vec![LinkMetrics::default(); total_masters],
                    node_base: spec.nodes.0,
                    master_base: spec.masters.0,
                    slave_base: spec.slaves.0,
                    boundary: Some(RegionBoundary {
                        fabric: Arc::clone(&fabric),
                        region: k,
                        regions: specs.len(),
                    }),
                    active: Vec::with_capacity(nodes),
                    in_active: vec![false; nodes],
                    event: None,
                }
            })
            .collect()
    }

    /// Reassembles regions produced by [`XpipesNoc::split`] (in the same
    /// order), summing every counter and histogram — each is additive
    /// over the disjoint events the regions observed, so the merged
    /// statistics are bit-identical to a serial run's.
    pub fn absorb(&mut self, regions: Vec<XpipesNoc>) {
        for region in regions {
            self.routers.extend(region.routers);
            self.master_nis.extend(region.master_nis);
            self.slave_nis.extend(region.slave_nis);
            self.packets.extend(region.packets);
            self.stats.packets += region.stats.packets;
            self.stats.flit_hops += region.stats.flit_hops;
            self.packet_latency.merge(&region.packet_latency);
            self.transactions += region.transactions;
            self.decode_errors += region.decode_errors;
            self.conflicts += region.conflicts;
            self.grant_wait.merge(&region.grant_wait);
            for (l, r) in self.links.iter_mut().zip(region.links.iter()) {
                l.grants += r.grants;
                l.stall_cycles += r.stall_cycles;
                l.busy_cycles += r.busy_cycles;
            }
        }
        debug_assert_eq!(self.routers.len(), self.cfg.nodes() as usize);
        self.in_active = vec![false; self.routers.len()];
        self.active = (0..self.routers.len())
            .filter(|&r| !self.routers[r].is_empty())
            .map(|r| r as u32)
            .collect();
        for &r in &self.active {
            self.in_active[r as usize] = true;
        }
    }
}

impl Component<LinkArena> for XpipesNoc {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, now: Cycle, net: &mut LinkArena) {
        self.phase_link(net, now);
        self.phase_switch_ni(net, now);
    }

    fn is_idle(&self, net: &LinkArena) -> bool {
        self.packets.is_empty()
            && self.active.is_empty()
            && self
                .master_nis
                .iter()
                .all(|ni| ni.tx.is_empty() && ni.link.is_quiet(net))
            && self.slave_nis.iter().all(|ni| {
                ni.tx.is_empty()
                    && ni.pending.is_empty()
                    && ni.busy.is_none()
                    && ni.link.is_quiet(net)
            })
    }

    // Ticks are complete no-ops while the network is drained, so the
    // default no-op `skip` is exact.
    fn next_activity(&self, now: Cycle, net: &LinkArena) -> Activity {
        // Any flit, pending delivery, or outstanding slave transaction
        // means the pipeline advances every cycle.
        let in_flight = !self.packets.is_empty()
            || !self.active.is_empty()
            || self.master_nis.iter().any(|ni| !ni.tx.is_empty())
            || self
                .slave_nis
                .iter()
                .any(|ni| !ni.tx.is_empty() || !ni.pending.is_empty() || ni.busy.is_some());
        if in_flight {
            return Activity::Busy;
        }
        let mut wake: Option<Cycle> = None;
        for ni in &self.master_nis {
            match ni.link.request_visible_at(net) {
                Some(at) if at <= now => return Activity::Busy,
                Some(at) => wake = Some(wake.map_or(at, |w| w.min(at))),
                None => {}
            }
        }
        match wake {
            Some(at) => Activity::IdleUntil(at),
            None if self.is_idle(net) => Activity::Drained,
            None => Activity::Busy,
        }
    }
}

impl Interconnect for XpipesNoc {
    fn kind(&self) -> InterconnectKind {
        InterconnectKind::Xpipes
    }

    fn transactions(&self) -> u64 {
        self.transactions
    }

    fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    fn latency_summary(&self) -> Option<(f64, u64)> {
        Some((self.packet_latency.mean()?, self.packet_latency.max()?))
    }

    // Flit hops are the mesh's unit of link occupancy: each hop keeps
    // one link busy for one cycle.
    fn utilization_cycles(&self) -> u64 {
        self.stats.flit_hops
    }

    fn contention(&self) -> Contention {
        Contention {
            conflicts: self.conflicts,
            grant_wait: self.grant_wait.clone(),
            links: self.links.clone(),
        }
    }

    fn as_xpipes_mut(&mut self) -> Option<&mut XpipesNoc> {
        Some(self)
    }

    fn set_event_driven(&mut self, on: bool) {
        if !on {
            self.event = None;
            return;
        }
        let n_links = self
            .master_nis
            .iter()
            .map(|ni| ni.link.id().index())
            .chain(self.slave_nis.iter().map(|ni| ni.link.id().index()))
            .max()
            .map_or(0, |m| m + 1);
        let mut ev = EventState {
            mni_armed: Vec::with_capacity(self.master_nis.len()),
            mni_in: vec![false; self.master_nis.len()],
            sni_armed: Vec::with_capacity(self.slave_nis.len()),
            sni_in: vec![false; self.slave_nis.len()],
            targets: vec![NiTarget::None; n_links],
        };
        for (i, ni) in self.master_nis.iter().enumerate() {
            ev.targets[ni.link.id().index()] = NiTarget::Master(i as u32);
        }
        for (i, ni) in self.slave_nis.iter().enumerate() {
            ev.targets[ni.link.id().index()] = NiTarget::Slave(i as u32);
        }
        // Conservative seed: every NI starts armed and proves itself
        // idle through the disarm sweep.
        for i in 0..ev.mni_in.len() {
            ev.arm_mni(i);
        }
        for i in 0..ev.sni_in.len() {
            ev.arm_sni(i);
        }
        self.event = Some(ev);
    }

    fn wake_link(&mut self, link: LinkId) {
        if let Some(ev) = &mut self.event {
            match ev
                .targets
                .get(link.index())
                .copied()
                .unwrap_or(NiTarget::None)
            {
                NiTarget::Master(i) => ev.arm_mni(i as usize),
                NiTarget::Slave(i) => ev.arm_sni(i as usize),
                NiTarget::None => {}
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use ntg_mem::{MemoryDevice, RegionKind};
    use ntg_ocp::{MasterId, OcpRequest, OcpStatus, SlaveId};

    struct Rig {
        links: LinkArena,
        noc: XpipesNoc,
        mems: Vec<MemoryDevice>,
        cpus: Vec<MasterPort>,
    }

    fn rig(n_masters: usize) -> Rig {
        let mut map = AddressMap::new();
        map.add("m0", 0x1000, 0x1000, SlaveId(0), RegionKind::SharedMemory)
            .unwrap();
        map.add("m1", 0x2000, 0x1000, SlaveId(1), RegionKind::SharedMemory)
            .unwrap();
        let mut links = LinkArena::new();
        let mut cpus = Vec::new();
        let mut net_masters = Vec::new();
        for i in 0..n_masters {
            let (m, s) = links.channel(format!("cpu{i}"), MasterId(i as u16));
            cpus.push(m);
            net_masters.push(s);
        }
        let mut mems = Vec::new();
        let mut net_slaves = Vec::new();
        for (i, base) in [(0u16, 0x1000u32), (1, 0x2000)] {
            let (m, s) = links.channel(format!("slave{i}"), MasterId(0));
            net_slaves.push(m);
            mems.push(MemoryDevice::new(format!("mem{i}"), base, 0x1000, s));
        }
        let cfg = XpipesConfig::auto(n_masters, 2);
        let noc = XpipesNoc::new("xpipes", net_masters, net_slaves, Arc::new(map), cfg);
        Rig {
            links,
            noc,
            mems,
            cpus,
        }
    }

    fn step(r: &mut Rig, now: Cycle) {
        r.noc.tick(now, &mut r.links);
        for m in &mut r.mems {
            m.tick(now, &mut r.links);
        }
    }

    #[test]
    fn auto_config_builds_a_valid_mesh() {
        let cfg = XpipesConfig::auto(12, 14);
        assert!(u32::from(cfg.nodes()) >= 26);
        assert_eq!(cfg.master_nodes.len(), 12);
        assert_eq!(cfg.slave_nodes.len(), 14);
    }

    #[test]
    fn read_round_trips_through_the_mesh() {
        let mut r = rig(1);
        r.mems[0].poke(0x1010, 4242);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1010), 0);
        for now in 0..100 {
            step(&mut r, now);
            if let Some(resp) = r.cpus[0].take_response(&mut r.links, now) {
                assert_eq!(resp.data, vec![4242]);
                assert!(
                    now > 6,
                    "NoC must be slower than the bus for one hop ({now})"
                );
                assert!(r.noc.stats().packets == 2, "request + response");
                return;
            }
        }
        panic!("no response");
    }

    #[test]
    fn posted_write_unblocks_at_the_ni() {
        let mut r = rig(1);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::write(0x2000, 31), 0);
        let mut accepted_at = None;
        for now in 0..100 {
            step(&mut r, now);
            if accepted_at.is_none() && r.cpus[0].take_accept(&mut r.links, now).is_some() {
                accepted_at = Some(now);
            }
        }
        assert_eq!(accepted_at, Some(2), "NI accepts before network transit");
        assert_eq!(r.mems[1].peek(0x2000), 31, "write still lands remotely");
    }

    #[test]
    fn burst_read_reassembles_whole_line() {
        let mut r = rig(1);
        r.mems[0].load_words(0x1000, &[5, 6, 7, 8]);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::burst_read(0x1000, 4), 0);
        for now in 0..200 {
            step(&mut r, now);
            if let Some(resp) = r.cpus[0].take_response(&mut r.links, now) {
                assert_eq!(resp.data, vec![5, 6, 7, 8]);
                return;
            }
        }
        panic!("no response");
    }

    #[test]
    fn two_masters_different_slaves_overlap() {
        let mut r = rig(2);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1000), 0);
        r.cpus[1].assert_request(&mut r.links, OcpRequest::read(0x2000), 0);
        let mut done = [None, None];
        for now in 0..200 {
            step(&mut r, now);
            for c in 0..2 {
                if done[c].is_none() && r.cpus[c].take_response(&mut r.links, now).is_some() {
                    done[c] = Some(now);
                }
            }
        }
        let (a, b) = (done[0].unwrap(), done[1].unwrap());
        // With per-slave paths the two reads overlap almost fully; they
        // must not be serialised end-to-end.
        assert!(b < a + 6, "reads should overlap: {a} vs {b}");
    }

    #[test]
    fn unmapped_read_errors_without_touching_the_mesh() {
        let mut r = rig(1);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0xDEAD_0000), 0);
        for now in 0..20 {
            step(&mut r, now);
            if let Some(resp) = r.cpus[0].take_response(&mut r.links, now) {
                assert_eq!(resp.status, OcpStatus::Error);
                assert_eq!(r.noc.stats().packets, 0);
                return;
            }
        }
        panic!("no response");
    }

    #[test]
    fn heavy_same_slave_traffic_all_completes() {
        let mut r = rig(2);
        let mut remaining = [10u32, 10];
        let mut completions = 0u32;
        for now in 0..5_000 {
            for c in 0..2 {
                if r.cpus[c].take_response(&mut r.links, now).is_some() {
                    completions += 1;
                }
                if !r.cpus[c].request_pending(&r.links) && remaining[c] > 0 {
                    r.cpus[c].assert_request(
                        &mut r.links,
                        OcpRequest::read(0x1000 + c as u32 * 8),
                        now,
                    );
                    remaining[c] -= 1;
                }
            }
            step(&mut r, now);
        }
        assert_eq!(completions, 20, "wormhole contention must not deadlock");
        assert!(r.noc.is_idle(&r.links));
    }

    #[test]
    fn write_data_flits_lengthen_packets() {
        let mut r = rig(1);
        r.cpus[0].assert_request(
            &mut r.links,
            OcpRequest::burst_write(0x1000, vec![1, 2, 3, 4]),
            0,
        );
        for now in 0..200 {
            step(&mut r, now);
            r.cpus[0].take_accept(&mut r.links, now);
        }
        assert_eq!(r.mems[0].peek(0x100C), 4);
        // 6 flits request (head + cmd + 4 data), no response packet.
        assert_eq!(r.noc.stats().packets, 1);
        assert!(r.noc.is_idle(&r.links));
    }

    #[test]
    fn xy_routing_goes_x_first() {
        // 3×3 mesh; master at node 0 (0,0), slaves at nodes 4 (1,1) and
        // 8 (2,2). The route function is internal, but its effect is
        // observable: traffic to both slaves must arrive (tested above);
        // here we check the topology helpers via auto-config shapes.
        let cfg = XpipesConfig::auto(1, 2);
        assert_eq!(cfg.width, 2);
        assert_eq!(cfg.height, 2);
        let cfg = XpipesConfig::auto(5, 4);
        assert_eq!(cfg.width, 3, "9 NIs need a 3-wide mesh");
        assert_eq!(cfg.height, 3);
    }

    #[test]
    fn single_node_mesh_is_rejected_with_two_nis() {
        let cfg = XpipesConfig::auto(0, 1);
        assert_eq!(cfg.nodes(), 1);
        // 1 master + 1 slave cannot share node 0.
        let bad = XpipesConfig {
            width: 1,
            height: 1,
            master_nodes: vec![0],
            slave_nodes: vec![0],
            input_fifo_flits: 2,
        };
        let map = Arc::new(AddressMap::new());
        let mut links = LinkArena::new();
        let (_, s) = links.channel("cpu", MasterId(0));
        let (m, _) = links.channel("slave", MasterId(0));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            XpipesNoc::new("bad", vec![s], vec![m], map, bad)
        }));
        assert!(r.is_err(), "two NIs on one node must be rejected");
    }

    #[test]
    fn min_fifo_depth_still_delivers() {
        // FIFO depth 1: maximal backpressure, still no deadlock.
        let mut mapm = AddressMap::new();
        mapm.add("m0", 0x1000, 0x1000, SlaveId(0), RegionKind::SharedMemory)
            .unwrap();
        mapm.add("m1", 0x2000, 0x1000, SlaveId(1), RegionKind::SharedMemory)
            .unwrap();
        let mut links = LinkArena::new();
        let (cpu, s0) = links.channel("cpu0", MasterId(0));
        let (m0, sl0) = links.channel("sl0", MasterId(0));
        let (m1, sl1) = links.channel("sl1", MasterId(0));
        let mut mem0 = MemoryDevice::new("mem0", 0x1000, 0x1000, sl0);
        let mut mem1 = MemoryDevice::new("mem1", 0x2000, 0x1000, sl1);
        let mut cfg = XpipesConfig::auto(1, 2);
        cfg.input_fifo_flits = 1;
        let mut noc = XpipesNoc::new("tight", vec![s0], vec![m0, m1], Arc::new(mapm), cfg);
        mem0.poke(0x1004, 99);
        cpu.assert_request(&mut links, OcpRequest::burst_read(0x1000, 4), 0);
        for now in 0..500 {
            noc.tick(now, &mut links);
            mem0.tick(now, &mut links);
            mem1.tick(now, &mut links);
            if let Some(resp) = cpu.take_response(&mut links, now) {
                assert_eq!(resp.data[1], 99);
                return;
            }
        }
        panic!("depth-1 FIFOs must still deliver");
    }

    #[test]
    fn mesh_contention_is_observed_per_master() {
        // Two long write packets race for the same slave: the second
        // head must lose arbitration somewhere along the shared path.
        let mut r = rig(2);
        r.cpus[0].assert_request(
            &mut r.links,
            OcpRequest::burst_write(0x1000, vec![1, 2, 3, 4]),
            0,
        );
        r.cpus[1].assert_request(
            &mut r.links,
            OcpRequest::burst_write(0x1010, vec![5, 6, 7, 8]),
            0,
        );
        for now in 0..300 {
            step(&mut r, now);
            r.cpus[0].take_accept(&mut r.links, now);
            r.cpus[1].take_accept(&mut r.links, now);
        }
        assert!(r.noc.is_idle(&r.links));
        let c = r.noc.contention();
        assert_eq!(c.links[0].grants, 1);
        assert_eq!(c.links[1].grants, 1);
        // 6 flits per write packet (head + cmd + 4 data), no response.
        assert_eq!(c.links[0].busy_cycles, 6);
        assert_eq!(c.links[1].busy_cycles, 6);
        assert_eq!(c.grant_wait.count(), 2);
        assert!(c.conflicts >= 1, "wormhole blocking must be visible");
        assert_eq!(r.noc.utilization_cycles(), r.noc.stats().flit_hops);
    }

    #[test]
    #[should_panic(expected = "hosts two NIs")]
    fn overlapping_attachment_rejected() {
        let cfg = XpipesConfig {
            width: 2,
            height: 2,
            master_nodes: vec![0],
            slave_nodes: vec![0],
            input_fifo_flits: 4,
        };
        let map = Arc::new(AddressMap::new());
        let mut links = LinkArena::new();
        let (_, s) = links.channel("cpu", MasterId(0));
        let (m, _) = links.channel("slave", MasterId(0));
        let _ = XpipesNoc::new("bad", vec![s], vec![m], map, cfg);
    }
}
