//! The idealised fixed-latency interconnect.

use std::collections::VecDeque;
use std::sync::Arc;

use ntg_mem::AddressMap;
use ntg_ocp::{LinkArena, MasterPort, OcpRequest, OcpResponse, SlavePort};
use ntg_sim::observe::{Contention, LinkMetrics};
use ntg_sim::stats::Histogram;
use ntg_sim::{Activity, Component, Cycle};

use crate::{Interconnect, InterconnectKind};

/// A contention-free interconnect with a fixed one-way latency.
///
/// Every master request is accepted immediately (so posted writes never
/// stall on the network) and arrives at its slave `latency` cycles later;
/// responses travel back with the same delay. Requests to the *same*
/// slave still queue there, because real devices service one transaction
/// at a time — the network itself is infinitely parallel.
///
/// This is the "transactional fabric model" role from the paper's §6: a
/// cheap stand-in interconnect for the reference simulation, since trace
/// translation produces identical TG programs regardless of the fabric
/// traces were collected on.
pub struct IdealInterconnect {
    name: String,
    masters: Vec<SlavePort>,
    slaves: Vec<MasterPort>,
    map: Arc<AddressMap>,
    latency: Cycle,
    /// Per-slave queue of requests in flight or waiting for the link.
    to_slave: Vec<VecDeque<(Cycle, usize, OcpRequest)>>,
    /// Per-slave FIFO of masters owed a response / acceptance relay.
    owners: Vec<VecDeque<(usize, bool)>>,
    /// Per-master responses flying back.
    to_master: Vec<VecDeque<(Cycle, OcpResponse)>>,
    transactions: u64,
    decode_errors: u64,
    conflicts: u64,
    grant_wait: Histogram,
    links: Vec<LinkMetrics>,
}

impl IdealInterconnect {
    /// Default one-way latency in cycles.
    pub const DEFAULT_LATENCY: Cycle = 2;

    /// Creates an ideal fabric with the default latency.
    ///
    /// Indexing conventions match [`AmbaBus::new`](crate::AmbaBus::new).
    pub fn new(
        name: impl Into<String>,
        masters: Vec<SlavePort>,
        slaves: Vec<MasterPort>,
        map: Arc<AddressMap>,
    ) -> Self {
        let n_slaves = slaves.len();
        let n_masters = masters.len();
        Self {
            name: name.into(),
            masters,
            slaves,
            map,
            latency: Self::DEFAULT_LATENCY,
            to_slave: (0..n_slaves).map(|_| VecDeque::new()).collect(),
            owners: (0..n_slaves).map(|_| VecDeque::new()).collect(),
            to_master: (0..n_masters).map(|_| VecDeque::new()).collect(),
            transactions: 0,
            decode_errors: 0,
            conflicts: 0,
            grant_wait: Histogram::new("grant_wait"),
            links: vec![LinkMetrics::default(); n_masters],
        }
    }

    /// Overrides the one-way latency.
    pub fn set_latency(&mut self, latency: Cycle) {
        self.latency = latency;
    }
}

impl Component<LinkArena> for IdealInterconnect {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, now: Cycle, net: &mut LinkArena) {
        // 1. Accept every visible master request.
        for m in 0..self.masters.len() {
            if !self.masters[m].has_request(net, now) {
                continue;
            }
            let req = self.masters[m]
                .accept_request(net, now)
                .expect("peeked request is still there");
            match self.map.slave_for(req.addr) {
                None => {
                    self.decode_errors += 1;
                    if req.cmd.expects_response() {
                        self.masters[m].push_response(net, OcpResponse::error(req.tag), now);
                    }
                }
                Some(slave) => {
                    self.transactions += 1;
                    self.links[m].grants += 1;
                    self.to_slave[slave.0 as usize].push_back((now + self.latency, m, req));
                }
            }
        }
        // 2. Deliver due requests to free slave links (one in flight per
        //    link; arrivals queue in FIFO order).
        for s in 0..self.slaves.len() {
            // Relay completions: writes complete on acceptance, reads on
            // response.
            if let Some(&(owner, expects)) = self.owners[s].front() {
                if expects {
                    if let Some(resp) = self.slaves[s].take_response(net, now) {
                        self.owners[s].pop_front();
                        self.to_master[owner].push_back((now + self.latency, resp));
                    }
                } else if self.slaves[s].take_accept(net, now).is_some() {
                    self.owners[s].pop_front();
                }
            }
            let due = matches!(self.to_slave[s].front(), Some(&(at, _, _)) if at <= now);
            if due && !self.slaves[s].request_pending(net) && self.owners[s].is_empty() {
                let (at, m, req) = self.to_slave[s].pop_front().expect("front checked");
                // The network itself is contention-free; any wait beyond
                // the flight time is same-slave queueing delay.
                let queue_wait = now - at;
                if queue_wait > 0 {
                    self.conflicts += 1;
                }
                self.grant_wait.record(queue_wait);
                self.links[m].stall_cycles += queue_wait;
                self.links[m].busy_cycles += self.latency;
                self.owners[s].push_back((m, req.cmd.expects_response()));
                self.slaves[s].forward_request(net, req, now);
            }
        }
        // 3. Deliver due responses to masters.
        for m in 0..self.masters.len() {
            while matches!(self.to_master[m].front(), Some(&(at, _)) if at <= now) {
                let (_, resp) = self.to_master[m].pop_front().expect("front checked");
                self.links[m].busy_cycles += self.latency;
                self.masters[m].push_response(net, resp, now);
            }
        }
    }

    fn is_idle(&self, net: &LinkArena) -> bool {
        self.to_slave.iter().all(VecDeque::is_empty)
            && self.owners.iter().all(VecDeque::is_empty)
            && self.to_master.iter().all(VecDeque::is_empty)
            && self.masters.iter().all(|p| p.is_quiet(net))
            && self.slaves.iter().all(|p| p.is_quiet(net))
    }

    // Ticks have no side effects while nothing is visible or due, so the
    // default no-op `skip` is exact.
    fn next_activity(&self, now: Cycle, net: &LinkArena) -> Activity {
        let mut wake: Option<Cycle> = None;
        let merge = |wake: &mut Option<Cycle>, at: Cycle| {
            *wake = Some(wake.map_or(at, |w| w.min(at)));
        };
        for m in &self.masters {
            match m.request_visible_at(net) {
                Some(at) if at <= now => return Activity::Busy,
                Some(at) => merge(&mut wake, at),
                None => {}
            }
        }
        for s in 0..self.slaves.len() {
            if self.owners[s].front().is_some() {
                // Waiting on the slave; a queued completion event gives
                // the exact wake, an unfinished service does not.
                match self.slaves[s].next_event_at(net) {
                    Some(at) if at > now => merge(&mut wake, at),
                    Some(_) => return Activity::Busy,
                    // Passive wait: the slave device bounds the horizon.
                    None => merge(&mut wake, Cycle::MAX),
                }
            } else if let Some(&(at, _, _)) = self.to_slave[s].front() {
                if at <= now {
                    return Activity::Busy;
                }
                merge(&mut wake, at);
            }
        }
        for q in &self.to_master {
            if let Some(&(at, _)) = q.front() {
                if at <= now {
                    return Activity::Busy;
                }
                merge(&mut wake, at);
            }
        }
        match wake {
            Some(at) => Activity::IdleUntil(at),
            None if self.is_idle(net) => Activity::Drained,
            None => Activity::Busy,
        }
    }
}

impl Interconnect for IdealInterconnect {
    fn kind(&self) -> InterconnectKind {
        InterconnectKind::Ideal
    }

    fn transactions(&self) -> u64 {
        self.transactions
    }

    fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    fn utilization_cycles(&self) -> u64 {
        // Request + response flight cycles; an infinitely parallel
        // fabric has no shared resource to saturate, so this only
        // indicates carried traffic volume.
        self.links.iter().map(|l| l.busy_cycles).sum()
    }

    fn contention(&self) -> Contention {
        Contention {
            conflicts: self.conflicts,
            grant_wait: self.grant_wait.clone(),
            links: self.links.clone(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use ntg_mem::{MemoryDevice, RegionKind};
    use ntg_ocp::{MasterId, OcpRequest, SlaveId};

    struct Rig {
        links: LinkArena,
        net: IdealInterconnect,
        mems: Vec<MemoryDevice>,
        cpus: Vec<MasterPort>,
    }

    fn rig(n: usize) -> Rig {
        let mut map = AddressMap::new();
        map.add("m0", 0x1000, 0x1000, SlaveId(0), RegionKind::SharedMemory)
            .unwrap();
        map.add("m1", 0x2000, 0x1000, SlaveId(1), RegionKind::SharedMemory)
            .unwrap();
        let mut links = LinkArena::new();
        let mut cpus = Vec::new();
        let mut net_masters = Vec::new();
        for i in 0..n {
            let (m, s) = links.channel(format!("cpu{i}"), MasterId(i as u16));
            cpus.push(m);
            net_masters.push(s);
        }
        let mut mems = Vec::new();
        let mut net_slaves = Vec::new();
        for (i, base) in [(0u16, 0x1000u32), (1, 0x2000)] {
            let (m, s) = links.channel(format!("slave{i}"), MasterId(0));
            net_slaves.push(m);
            mems.push(MemoryDevice::new(format!("mem{i}"), base, 0x1000, s));
        }
        let net = IdealInterconnect::new("ideal", net_masters, net_slaves, Arc::new(map));
        Rig {
            links,
            net,
            mems,
            cpus,
        }
    }

    fn step(r: &mut Rig, now: Cycle) {
        r.net.tick(now, &mut r.links);
        for m in &mut r.mems {
            m.tick(now, &mut r.links);
        }
    }

    #[test]
    fn read_latency_includes_both_directions() {
        let mut r = rig(1);
        r.mems[0].poke(0x1000, 3);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1000), 0);
        for now in 0..30 {
            step(&mut r, now);
            if let Some(resp) = r.cpus[0].take_response(&mut r.links, now) {
                assert_eq!(resp.data, vec![3]);
                // accept @1, at slave @3 (+2), service visible @4, done
                // @4+2=6... slave pushes @6? then +2 back, +1 visibility.
                assert!(now >= 2 * IdealInterconnect::DEFAULT_LATENCY + 4);
                return;
            }
        }
        panic!("no response");
    }

    #[test]
    fn writes_never_stall_the_master() {
        let mut r = rig(1);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::write(0x1000, 1), 0);
        let mut accepted_at = None;
        for now in 0..30 {
            step(&mut r, now);
            if accepted_at.is_none() && r.cpus[0].take_accept(&mut r.links, now).is_some() {
                accepted_at = Some(now);
            }
        }
        assert_eq!(accepted_at, Some(2), "accept at first visible cycle");
        assert_eq!(r.mems[0].peek(0x1000), 1, "write still lands");
    }

    #[test]
    fn many_masters_suffer_no_network_contention() {
        // Masters targeting different slaves all complete at the same
        // cycle despite sharing the fabric.
        let mut r = rig(2);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1000), 0);
        r.cpus[1].assert_request(&mut r.links, OcpRequest::read(0x2000), 0);
        let mut done = [None, None];
        for now in 0..30 {
            step(&mut r, now);
            for c in 0..2 {
                if done[c].is_none() && r.cpus[c].take_response(&mut r.links, now).is_some() {
                    done[c] = Some(now);
                }
            }
        }
        assert_eq!(done[0], done[1]);
    }

    #[test]
    fn same_slave_requests_queue_in_order() {
        let mut r = rig(2);
        r.mems[0].poke(0x1000, 10);
        r.mems[0].poke(0x1004, 20);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1000), 0);
        r.cpus[1].assert_request(&mut r.links, OcpRequest::read(0x1004), 0);
        let mut order = Vec::new();
        for now in 0..60 {
            step(&mut r, now);
            for c in 0..2 {
                if let Some(resp) = r.cpus[c].take_response(&mut r.links, now) {
                    order.push((c, resp.word()));
                }
            }
        }
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], (0, 10), "FIFO at the slave");
        assert_eq!(order[1], (1, 20));
    }

    #[test]
    fn queueing_delay_is_the_only_contention() {
        // Same slave: the second request waits at the device, which the
        // metrics report as a conflict with stall cycles.
        let mut r = rig(2);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1000), 0);
        r.cpus[1].assert_request(&mut r.links, OcpRequest::read(0x1004), 0);
        for now in 0..60 {
            step(&mut r, now);
            for c in 0..2 {
                r.cpus[c].take_response(&mut r.links, now);
            }
        }
        let c = r.net.contention();
        assert_eq!(c.conflicts, 1, "second request queued behind the first");
        assert_eq!(c.links[0].grants, 1);
        assert_eq!(c.links[1].grants, 1);
        assert!(c.links[0].stall_cycles == 0 || c.links[1].stall_cycles == 0);
        assert!(c.links[0].stall_cycles + c.links[1].stall_cycles > 0);
        // Four flight legs of DEFAULT_LATENCY cycles each.
        assert_eq!(
            r.net.utilization_cycles(),
            4 * IdealInterconnect::DEFAULT_LATENCY
        );

        // Different slaves: an infinitely parallel network, no conflicts.
        let mut r = rig(2);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1000), 0);
        r.cpus[1].assert_request(&mut r.links, OcpRequest::read(0x2000), 0);
        for now in 0..60 {
            step(&mut r, now);
            for c in 0..2 {
                r.cpus[c].take_response(&mut r.links, now);
            }
        }
        let c = r.net.contention();
        assert_eq!(c.conflicts, 0);
        assert_eq!(c.links[0].stall_cycles + c.links[1].stall_cycles, 0);
    }

    #[test]
    fn zero_latency_is_allowed() {
        let mut r = rig(1);
        r.net.set_latency(0);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1000), 0);
        for now in 0..20 {
            step(&mut r, now);
            if r.cpus[0].take_response(&mut r.links, now).is_some() {
                assert!(now <= 6);
                return;
            }
        }
        panic!("no response");
    }

    #[test]
    fn goes_idle_after_posted_write_completes() {
        let mut r = rig(1);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::write(0x1000, 1), 0);
        for now in 0..30 {
            step(&mut r, now);
            r.cpus[0].take_accept(&mut r.links, now);
        }
        assert!(r.net.is_idle(&r.links));
    }
}
