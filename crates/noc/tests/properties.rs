//! Property-based tests shared by every interconnect model:
//! conservation (each read gets exactly one response, each write exactly
//! one acceptance), per-master ordering, and functional equivalence of
//! the final memory image for single-master traffic.

use std::rc::Rc;

use ntg_mem::{AddressMap, MemoryDevice, RegionKind};
use ntg_noc::{AmbaBus, CrossbarBus, IdealInterconnect, Interconnect, XpipesConfig, XpipesNoc};
use ntg_ocp::{channel, MasterId, MasterPort, OcpRequest, SlaveId};
use ntg_sim::Component;
use proptest::prelude::*;

const N_SLAVES: usize = 2;
const BASES: [u32; N_SLAVES] = [0x1000, 0x2000];

#[derive(Debug, Clone, Copy)]
struct Op {
    write: bool,
    slave: usize,
    word: u32,
    value: u32,
    gap: u8,
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (
            any::<bool>(),
            0usize..N_SLAVES,
            0u32..64,
            any::<u32>(),
            0u8..6,
        )
            .prop_map(|(write, slave, word, value, gap)| Op {
                write,
                slave,
                word,
                value,
                gap,
            }),
        1..max,
    )
}

struct Rig {
    net: Box<dyn Interconnect>,
    mems: Vec<MemoryDevice>,
    cpus: Vec<MasterPort>,
}

fn build(kind: &str, n_masters: usize) -> Rig {
    let mut map = AddressMap::new();
    for (i, base) in BASES.iter().enumerate() {
        map.add(
            format!("m{i}"),
            *base,
            0x1000,
            SlaveId(i as u16),
            RegionKind::SharedMemory,
        )
        .unwrap();
    }
    let map = Rc::new(map);
    let mut cpus = Vec::new();
    let mut net_masters = Vec::new();
    for i in 0..n_masters {
        let (m, s) = channel(format!("cpu{i}"), MasterId(i as u16));
        cpus.push(m);
        net_masters.push(s);
    }
    let mut mems = Vec::new();
    let mut net_slaves = Vec::new();
    for (i, base) in BASES.iter().enumerate() {
        let (m, s) = channel(format!("slave{i}"), MasterId(0));
        net_slaves.push(m);
        mems.push(MemoryDevice::new(format!("mem{i}"), *base, 0x1000, s));
    }
    let net: Box<dyn Interconnect> = match kind {
        "amba" => Box::new(AmbaBus::new("amba", net_masters, net_slaves, map)),
        "crossbar" => Box::new(CrossbarBus::new("xbar", net_masters, net_slaves, map)),
        "xpipes" => Box::new(XpipesNoc::new(
            "xpipes",
            net_masters,
            net_slaves,
            map,
            XpipesConfig::auto(n_masters, N_SLAVES),
        )),
        "ideal" => Box::new(IdealInterconnect::new(
            "ideal",
            net_masters,
            net_slaves,
            map,
        )),
        _ => unreachable!("unknown interconnect"),
    };
    Rig { net, mems, cpus }
}

/// Drives one master through its op list; returns responses in order.
/// Blocking semantics: reads wait for the response, writes for the
/// acceptance, matching the platform's masters.
fn drive(rig: &mut Rig, per_master_ops: &[Vec<Op>]) -> Vec<Vec<u32>> {
    let n = per_master_ops.len();
    let mut next_op = vec![0usize; n];
    let mut wait_gap = vec![0u8; n];
    let mut awaiting_resp = vec![false; n];
    let mut awaiting_acc = vec![false; n];
    let mut responses: Vec<Vec<u32>> = vec![Vec::new(); n];

    for now in 0..200_000u64 {
        for m in 0..n {
            // Resolve waits.
            if awaiting_resp[m] {
                if let Some(resp) = rig.cpus[m].take_response(now) {
                    assert_eq!(resp.status, ntg_ocp::OcpStatus::Ok);
                    responses[m].push(resp.word());
                    awaiting_resp[m] = false;
                } else {
                    continue;
                }
            }
            if awaiting_acc[m] {
                if rig.cpus[m].take_accept(now).is_some() {
                    awaiting_acc[m] = false;
                } else {
                    continue;
                }
            }
            if wait_gap[m] > 0 {
                wait_gap[m] -= 1;
                continue;
            }
            // Issue the next operation.
            if let Some(op) = per_master_ops[m].get(next_op[m]) {
                let addr = BASES[op.slave] + op.word * 4;
                if op.write {
                    rig.cpus[m].assert_request(OcpRequest::write(addr, op.value), now);
                    awaiting_acc[m] = true;
                } else {
                    rig.cpus[m].assert_request(OcpRequest::read(addr), now);
                    awaiting_resp[m] = true;
                }
                next_op[m] += 1;
                wait_gap[m] = op.gap;
            }
        }
        rig.net.tick(now);
        for mem in &mut rig.mems {
            mem.tick(now);
        }
        let all_done = (0..n).all(|m| {
            next_op[m] == per_master_ops[m].len() && !awaiting_resp[m] && !awaiting_acc[m]
        });
        if all_done && rig.net.is_idle() {
            return responses;
        }
    }
    panic!("traffic did not drain");
}

/// The reference model: per-slave word arrays; single-master execution
/// order is the program order.
fn golden_single(ops: &[Op]) -> (Vec<u32>, [Vec<u32>; N_SLAVES]) {
    let mut mems = [vec![0u32; 64], vec![0u32; 64]];
    let mut reads = Vec::new();
    for op in ops {
        if op.write {
            mems[op.slave][op.word as usize] = op.value;
        } else {
            reads.push(mems[op.slave][op.word as usize]);
        }
    }
    (reads, mems)
}

const KINDS: [&str; 4] = ["amba", "crossbar", "xpipes", "ideal"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single master: every interconnect preserves program order, so the
    /// observed read values and final memory equal the sequential model.
    #[test]
    fn single_master_sequential_semantics(ops in ops(40)) {
        let (want_reads, want_mem) = golden_single(&ops);
        for kind in KINDS {
            let mut rig = build(kind, 1);
            let responses = drive(&mut rig, std::slice::from_ref(&ops));
            prop_assert_eq!(
                &responses[0], &want_reads,
                "{}: read values diverge", kind
            );
            for (s, mem) in rig.mems.iter().enumerate() {
                for w in 0..64u32 {
                    prop_assert_eq!(
                        mem.peek(BASES[s] + w * 4),
                        want_mem[s][w as usize],
                        "{}: slave {} word {} diverges", kind, s, w
                    );
                }
            }
        }
    }

    /// Multi-master conservation: with every master running its own op
    /// list, each read receives exactly one OK response and all traffic
    /// drains (no lost or duplicated transactions, no deadlock).
    #[test]
    fn multi_master_conservation(
        a in ops(25), b in ops(25), c in ops(25)
    ) {
        let per_master = vec![a, b, c];
        for kind in KINDS {
            let mut rig = build(kind, 3);
            let responses = drive(&mut rig, &per_master);
            for (m, ops) in per_master.iter().enumerate() {
                let reads = ops.iter().filter(|o| !o.write).count();
                prop_assert_eq!(
                    responses[m].len(), reads,
                    "{}: master {} response count", kind, m
                );
            }
            // Total writes arrived at the devices.
            let writes: u64 = per_master
                .iter()
                .flatten()
                .filter(|o| o.write)
                .count() as u64;
            let serviced: u64 = rig.mems.iter().map(MemoryDevice::writes).sum();
            prop_assert_eq!(serviced, writes, "{}: writes conserved", kind);
        }
    }

    /// Masters writing to disjoint words: the final memory image is the
    /// same on every interconnect (order across masters may differ, but
    /// disjoint writes commute).
    #[test]
    fn disjoint_writes_agree_across_fabrics(raw in ops(30)) {
        // Partition words among 3 masters (word % 3) and force writes.
        let mut per_master = vec![Vec::new(), Vec::new(), Vec::new()];
        for (i, mut op) in raw.into_iter().enumerate() {
            op.write = true;
            let m = (op.word % 3) as usize;
            op.word = op.word - (op.word % 3) + m as u32; // keep ownership
            op.value = op.value.wrapping_add(i as u32);
            per_master[m].push(op);
        }
        let mut images: Vec<Vec<u32>> = Vec::new();
        for kind in KINDS {
            let mut rig = build(kind, 3);
            drive(&mut rig, &per_master);
            let mut image = Vec::new();
            for (s, base) in BASES.iter().enumerate() {
                for w in 0..64u32 {
                    image.push(rig.mems[s].peek(base + w * 4));
                }
            }
            images.push(image);
        }
        for pair in images.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1], "fabrics disagree on memory image");
        }
    }
}
