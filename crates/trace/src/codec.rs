//! Versioned binary serialisation of traces (the persistent-store
//! codec).
//!
//! The `.trc` text format (see [`format`](crate::MasterTrace::to_trc))
//! is for humans and interop; the binary codec here is for the
//! `ntg-explore` persistent artifact store, where traces are written
//! once and re-read by every later campaign. Design constraints:
//!
//! * **no external deps** — hand-rolled little-endian framing;
//! * **versioned** — a bumped [`TRACE_BIN_VERSION`] makes old entries
//!   decode to [`BinCodecError::BadVersion`] instead of garbage (and
//!   the store's key salt retires them wholesale, see
//!   `ntg_core::STORE_FORMAT_VERSION`);
//! * **checksummed** — an FNV-1a digest of everything before the
//!   trailer detects torn or bit-rotted files, so a corrupt store entry
//!   degrades to a rebuild, never to a silently wrong simulation;
//! * **deterministic** — equal traces encode to equal bytes, which the
//!   store's write-once collision handling relies on.
//!
//! The [`ByteWriter`]/[`ByteReader`] primitives are public because the
//! downstream crates (`ntg-core` for calibration configs, `ntg-explore`
//! for composite store entries) frame their payloads with the same
//! helpers.

use ntg_ocp::{DataWords, OcpCmd};

use crate::event::{MasterTrace, TraceEvent};

/// Current binary trace format version. Bump on any layout change.
pub const TRACE_BIN_VERSION: u32 = 1;

/// Magic number at the start of every binary trace (`"NTGR"`).
pub const TRACE_BIN_MAGIC: [u8; 4] = *b"NTGR";

/// A binary decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinCodecError {
    /// The magic number did not match.
    BadMagic,
    /// The format version is not the one this build writes.
    BadVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The byte stream ended prematurely.
    Truncated,
    /// The checksum trailer did not match the content.
    BadChecksum,
    /// An enum tag had no defined meaning.
    BadTag {
        /// Byte offset of the offending tag.
        offset: usize,
    },
    /// Bytes remained after the last expected field.
    TrailingBytes,
}

impl std::fmt::Display for BinCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinCodecError::BadMagic => write!(f, "bad magic number"),
            BinCodecError::BadVersion { found } => {
                write!(f, "unsupported format version {found}")
            }
            BinCodecError::Truncated => write!(f, "truncated byte stream"),
            BinCodecError::BadChecksum => write!(f, "checksum mismatch"),
            BinCodecError::BadTag { offset } => write!(f, "undefined tag at byte {offset}"),
            BinCodecError::TrailingBytes => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for BinCodecError {}

/// FNV-1a over a byte slice — the codec's checksum function.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian byte-stream writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` (bit pattern; exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends raw bytes (no length prefix).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed byte string.
    pub fn lp_bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.bytes(v);
    }

    /// Appends the FNV-1a checksum of everything written so far and
    /// returns the finished buffer.
    pub fn finish_checksummed(mut self) -> Vec<u8> {
        let sum = fnv64(&self.buf);
        self.u64(sum);
        self.buf
    }

    /// Returns the buffer without a checksum trailer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian byte-stream reader.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Verifies and strips the FNV-1a checksum trailer, returning a
    /// reader over the payload.
    ///
    /// # Errors
    ///
    /// [`BinCodecError::Truncated`] if there is no room for a trailer,
    /// [`BinCodecError::BadChecksum`] on digest mismatch.
    pub fn new_checksummed(buf: &'a [u8]) -> Result<Self, BinCodecError> {
        if buf.len() < 8 {
            return Err(BinCodecError::Truncated);
        }
        let (payload, trailer) = buf.split_at(buf.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        if fnv64(payload) != stored {
            return Err(BinCodecError::BadChecksum);
        }
        Ok(Self::new(payload))
    }

    /// Current byte offset (for error reporting).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`BinCodecError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], BinCodecError> {
        let end = self.pos.checked_add(n).ok_or(BinCodecError::Truncated)?;
        let chunk = self
            .buf
            .get(self.pos..end)
            .ok_or(BinCodecError::Truncated)?;
        self.pos = end;
        Ok(chunk)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`BinCodecError::Truncated`] at end of stream.
    pub fn u8(&mut self) -> Result<u8, BinCodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// [`BinCodecError::Truncated`] at end of stream.
    pub fn u16(&mut self) -> Result<u16, BinCodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`BinCodecError::Truncated`] at end of stream.
    pub fn u32(&mut self) -> Result<u32, BinCodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`BinCodecError::Truncated`] at end of stream.
    pub fn u64(&mut self) -> Result<u64, BinCodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads an `f64` (bit pattern).
    ///
    /// # Errors
    ///
    /// [`BinCodecError::Truncated`] at end of stream.
    pub fn f64(&mut self) -> Result<f64, BinCodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`BinCodecError::Truncated`] if the prefix overruns the stream.
    pub fn lp_bytes(&mut self) -> Result<&'a [u8], BinCodecError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| BinCodecError::Truncated)?;
        self.take(n)
    }

    /// Asserts the stream is fully consumed.
    ///
    /// # Errors
    ///
    /// [`BinCodecError::TrailingBytes`] if bytes remain.
    pub fn expect_end(&self) -> Result<(), BinCodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(BinCodecError::TrailingBytes)
        }
    }
}

// Event tags. New variants get new tags; existing tags never change
// meaning (the version bump covers layout changes).
const TAG_REQUEST: u8 = 0;
const TAG_ACCEPT: u8 = 1;
const TAG_RESPONSE: u8 = 2;

const CMD_READ: u8 = 0;
const CMD_WRITE: u8 = 1;
const CMD_BURST_READ: u8 = 2;
const CMD_BURST_WRITE: u8 = 3;

fn encode_cmd(cmd: OcpCmd) -> u8 {
    match cmd {
        OcpCmd::Read => CMD_READ,
        OcpCmd::Write => CMD_WRITE,
        OcpCmd::BurstRead => CMD_BURST_READ,
        OcpCmd::BurstWrite => CMD_BURST_WRITE,
    }
}

fn decode_cmd(tag: u8, offset: usize) -> Result<OcpCmd, BinCodecError> {
    match tag {
        CMD_READ => Ok(OcpCmd::Read),
        CMD_WRITE => Ok(OcpCmd::Write),
        CMD_BURST_READ => Ok(OcpCmd::BurstRead),
        CMD_BURST_WRITE => Ok(OcpCmd::BurstWrite),
        _ => Err(BinCodecError::BadTag { offset }),
    }
}

fn encode_words(w: &mut ByteWriter, words: &[u32]) {
    w.u32(words.len() as u32);
    for &word in words {
        w.u32(word);
    }
}

fn decode_words(r: &mut ByteReader<'_>) -> Result<DataWords, BinCodecError> {
    let n = r.u32()? as usize;
    let mut words = DataWords::new();
    for _ in 0..n {
        words.push(r.u32()?);
    }
    Ok(words)
}

impl MasterTrace {
    /// Serialises the trace to its versioned, checksummed binary form.
    pub fn to_bin(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(&TRACE_BIN_MAGIC);
        w.u32(TRACE_BIN_VERSION);
        w.u16(self.master);
        w.u64(self.period_ns);
        match self.halt_at {
            Some(at) => {
                w.u8(1);
                w.u64(at);
            }
            None => w.u8(0),
        }
        w.u32(self.events.len() as u32);
        for ev in &self.events {
            match ev {
                TraceEvent::Request {
                    cmd,
                    addr,
                    data,
                    burst,
                    at,
                } => {
                    w.u8(TAG_REQUEST);
                    w.u8(encode_cmd(*cmd));
                    w.u32(*addr);
                    encode_words(&mut w, data);
                    w.u8(*burst);
                    w.u64(*at);
                }
                TraceEvent::Accept { at } => {
                    w.u8(TAG_ACCEPT);
                    w.u64(*at);
                }
                TraceEvent::Response { data, at } => {
                    w.u8(TAG_RESPONSE);
                    encode_words(&mut w, data);
                    w.u64(*at);
                }
            }
        }
        w.finish_checksummed()
    }

    /// Deserialises a binary trace, verifying magic, version and
    /// checksum.
    ///
    /// # Errors
    ///
    /// Returns a [`BinCodecError`] describing the first problem found.
    pub fn from_bin(bytes: &[u8]) -> Result<Self, BinCodecError> {
        let mut r = ByteReader::new_checksummed(bytes)?;
        if r.take(4)? != TRACE_BIN_MAGIC {
            return Err(BinCodecError::BadMagic);
        }
        let version = r.u32()?;
        if version != TRACE_BIN_VERSION {
            return Err(BinCodecError::BadVersion { found: version });
        }
        let master = r.u16()?;
        let period_ns = r.u64()?;
        let halt_at = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            _ => {
                return Err(BinCodecError::BadTag {
                    offset: r.offset() - 1,
                })
            }
        };
        let n_events = r.u32()? as usize;
        let mut events = Vec::with_capacity(n_events.min(1 << 20));
        for _ in 0..n_events {
            let tag_at = r.offset();
            let ev = match r.u8()? {
                TAG_REQUEST => {
                    let cmd_at = r.offset();
                    let cmd = decode_cmd(r.u8()?, cmd_at)?;
                    let addr = r.u32()?;
                    let data = decode_words(&mut r)?;
                    let burst = r.u8()?;
                    let at = r.u64()?;
                    TraceEvent::Request {
                        cmd,
                        addr,
                        data,
                        burst,
                        at,
                    }
                }
                TAG_ACCEPT => TraceEvent::Accept { at: r.u64()? },
                TAG_RESPONSE => {
                    let data = decode_words(&mut r)?;
                    let at = r.u64()?;
                    TraceEvent::Response { data, at }
                }
                _ => return Err(BinCodecError::BadTag { offset: tag_at }),
            };
            events.push(ev);
        }
        r.expect_end()?;
        Ok(Self {
            master,
            period_ns,
            events,
            halt_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MasterTrace {
        let mut tr = MasterTrace::new(3, 5);
        tr.events = vec![
            TraceEvent::Request {
                cmd: OcpCmd::Read,
                addr: 0x104,
                data: vec![].into(),
                burst: 1,
                at: 55,
            },
            TraceEvent::Accept { at: 60 },
            TraceEvent::Response {
                data: vec![0x88].into(),
                at: 75,
            },
            TraceEvent::Request {
                cmd: OcpCmd::BurstWrite,
                addr: 0x2000,
                data: vec![1, 2, 3, 4].into(),
                burst: 4,
                at: 90,
            },
            TraceEvent::Accept { at: 95 },
        ];
        tr.halt_at = Some(1234);
        tr
    }

    #[test]
    fn round_trips() {
        let tr = sample();
        assert_eq!(MasterTrace::from_bin(&tr.to_bin()).unwrap(), tr);
    }

    #[test]
    fn round_trips_spilled_payloads() {
        // A burst longer than `DataWords::INLINE` uses the heap
        // representation; the codec must round-trip it identically (the
        // byte format is representation-blind).
        let long: Vec<u32> = (0..(DataWords::INLINE as u32 + 3)).collect();
        let mut tr = MasterTrace::new(1, 5);
        tr.events = vec![
            TraceEvent::Request {
                cmd: OcpCmd::BurstWrite,
                addr: 0x1000,
                data: long.clone().into(),
                burst: long.len() as u8,
                at: 10,
            },
            TraceEvent::Accept { at: 12 },
        ];
        let back = MasterTrace::from_bin(&tr.to_bin()).unwrap();
        assert_eq!(back, tr);
        let TraceEvent::Request { data, .. } = &back.events[0] else {
            panic!("first event is the request");
        };
        assert!(!data.is_inline(), "a 7-word payload must spill");
        assert_eq!(*data, long);
    }

    #[test]
    fn empty_trace_round_trips() {
        let tr = MasterTrace::new(0, 5);
        assert_eq!(MasterTrace::from_bin(&tr.to_bin()).unwrap(), tr);
    }

    #[test]
    fn no_halt_round_trips() {
        let mut tr = sample();
        tr.halt_at = None;
        assert_eq!(MasterTrace::from_bin(&tr.to_bin()).unwrap(), tr);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().to_bin(), sample().to_bin());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bin();
        bytes[0] = b'X';
        // The flipped byte also breaks the checksum, which is checked
        // first — both are acceptable outcomes for corruption.
        assert!(MasterTrace::from_bin(&bytes).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let tr = MasterTrace::new(0, 5);
        // Re-frame the payload with a bumped version and a valid
        // checksum: the version check itself must fire.
        let bytes = tr.to_bin();
        let payload = &bytes[..bytes.len() - 8];
        let mut forged = payload.to_vec();
        forged[4..8].copy_from_slice(&(TRACE_BIN_VERSION + 1).to_le_bytes());
        let mut w = ByteWriter::new();
        w.bytes(&forged);
        let forged = w.finish_checksummed();
        assert_eq!(
            MasterTrace::from_bin(&forged),
            Err(BinCodecError::BadVersion {
                found: TRACE_BIN_VERSION + 1
            })
        );
    }

    #[test]
    fn flipped_bit_fails_checksum() {
        let mut bytes = sample().to_bin();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert_eq!(
            MasterTrace::from_bin(&bytes),
            Err(BinCodecError::BadChecksum)
        );
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bin();
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(MasterTrace::from_bin(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        // Append a byte *inside* the checksummed region by re-framing.
        let bytes = sample().to_bin();
        let mut payload = bytes[..bytes.len() - 8].to_vec();
        payload.push(0);
        let mut w = ByteWriter::new();
        w.bytes(&payload);
        let forged = w.finish_checksummed();
        assert_eq!(
            MasterTrace::from_bin(&forged),
            Err(BinCodecError::TrailingBytes)
        );
    }

    #[test]
    fn writer_reader_primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.f64(0.125);
        w.lp_bytes(b"hello");
        let buf = w.finish_checksummed();
        let mut r = ByteReader::new_checksummed(&buf).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), 0.125);
        assert_eq!(r.lp_bytes().unwrap(), b"hello");
        r.expect_end().unwrap();
    }
}
