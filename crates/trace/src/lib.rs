//! OCP interface trace capture and the `.trc` file format.
//!
//! The reproduced paper's flow starts by running a reference simulation
//! with real IP cores and recording, at every OCP master interface, "the
//! type and the timestamp of communication events" (§1) — requests with
//! their address/data fields, request acceptances, and responses. Those
//! per-core traces (`.trc` files) are what the trace-to-program
//! translator in `ntg-core` turns into traffic-generator programs.
//!
//! This crate provides:
//!
//! * [`TraceEvent`] / [`MasterTrace`] — the in-memory event model, with
//!   nanosecond timestamps exactly like the paper's Figure 3(a);
//! * [`Transaction`] — the validated request/accept/response grouping the
//!   translator consumes ([`MasterTrace::transactions`]);
//! * [`TraceMonitor`] — a [`ChannelObserver`](ntg_ocp::ChannelObserver)
//!   that records events at a master interface while the simulation runs;
//! * text serialisation ([`MasterTrace::to_trc`]) and parsing
//!   ([`MasterTrace::from_trc`]) of the `.trc` format;
//! * a versioned, checksummed binary codec ([`MasterTrace::to_bin`] /
//!   [`MasterTrace::from_bin`]) plus the [`ByteWriter`]/[`ByteReader`]
//!   framing primitives used by the persistent artifact store;
//! * [`TraceStats`] — summary statistics over a trace;
//! * [`chrome_trace_json`] — a Chrome `trace_event` timeline export
//!   loadable in `chrome://tracing` / Perfetto (the paper's Figure 2
//!   communication patterns as an interactive artifact).
//!
//! Timestamps are recorded in nanoseconds (`cycle × period`); the paper
//! uses a 5 ns cycle and so do we by default.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod codec;
pub mod diff;
mod event;
mod format;
mod monitor;
mod stats;

pub use chrome::chrome_trace_json;
pub use codec::{fnv64, BinCodecError, ByteReader, ByteWriter, TRACE_BIN_MAGIC, TRACE_BIN_VERSION};
pub use diff::{behavioural_diff, TraceDivergence};
pub use event::{MasterTrace, TraceError, TraceEvent, Transaction};
pub use format::TrcParseError;
pub use monitor::{shared_trace, SharedTrace, TraceMonitor};
pub use stats::TraceStats;
