//! Text serialisation of traces: the `.trc` format.
//!
//! The format mirrors the paper's Figure 3(a) but is fully specified so
//! it round-trips:
//!
//! ```text
//! ; ntg trace v1
//! MASTER 0
//! PERIOD_NS 5
//! REQ RD 0x00000104 @55
//! ACK @60
//! RESP 0x088000f0 @75
//! REQ WR 0x00000020 0x00000111 @90
//! ACK @95
//! REQ BRD 0x00000100 len=4 @120
//! ACK @125
//! RESP 0x00000001,0x00000002,0x00000003,0x00000004 @150
//! END
//! ```
//!
//! Lines starting with `;` are comments; blank lines are ignored.

use std::fmt::Write as _;

use ntg_ocp::{DataWords, OcpCmd};

use crate::event::{MasterTrace, TraceEvent};

/// A `.trc` parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrcParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for TrcParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, ".trc line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TrcParseError {}

fn fmt_words(words: &[u32]) -> String {
    words
        .iter()
        .map(|w| format!("{w:#010x}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_words(s: &str, line: usize) -> Result<DataWords, TrcParseError> {
    s.split(',').map(|w| parse_u32(w.trim(), line)).collect()
}

fn parse_u32(s: &str, line: usize) -> Result<u32, TrcParseError> {
    let r = if let Some(hex) = s.strip_prefix("0x") {
        u32::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| TrcParseError {
        line,
        reason: format!("invalid number {s:?}"),
    })
}

fn parse_at(s: &str, line: usize) -> Result<u64, TrcParseError> {
    let Some(n) = s.strip_prefix('@') else {
        return Err(TrcParseError {
            line,
            reason: format!("expected @timestamp, found {s:?}"),
        });
    };
    n.parse().map_err(|_| TrcParseError {
        line,
        reason: format!("invalid timestamp {s:?}"),
    })
}

impl MasterTrace {
    /// Serialises the trace to `.trc` text.
    pub fn to_trc(&self) -> String {
        let mut out = String::new();
        out.push_str("; ntg trace v1\n");
        let _ = writeln!(out, "MASTER {}", self.master);
        let _ = writeln!(out, "PERIOD_NS {}", self.period_ns);
        for ev in &self.events {
            match ev {
                TraceEvent::Request {
                    cmd,
                    addr,
                    data,
                    burst,
                    at,
                } => {
                    let _ = write!(out, "REQ {} {addr:#010x}", cmd.mnemonic());
                    if !data.is_empty() {
                        let _ = write!(out, " {}", fmt_words(data));
                    }
                    if *burst != 1 {
                        let _ = write!(out, " len={burst}");
                    }
                    let _ = writeln!(out, " @{at}");
                }
                TraceEvent::Accept { at } => {
                    let _ = writeln!(out, "ACK @{at}");
                }
                TraceEvent::Response { data, at } => {
                    let _ = writeln!(out, "RESP {} @{at}", fmt_words(data));
                }
            }
        }
        if let Some(h) = self.halt_at {
            let _ = writeln!(out, "HALT @{h}");
        }
        out.push_str("END\n");
        out
    }

    /// Parses `.trc` text.
    ///
    /// # Errors
    ///
    /// Returns a [`TrcParseError`] naming the offending line.
    pub fn from_trc(text: &str) -> Result<Self, TrcParseError> {
        let mut trace = MasterTrace::default();
        let mut saw_master = false;
        let mut saw_end = false;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with(';') {
                continue;
            }
            if saw_end {
                return Err(TrcParseError {
                    line: line_no,
                    reason: "content after END".into(),
                });
            }
            let mut parts = line.split_whitespace();
            let head = parts.next().expect("non-empty line");
            let err = |reason: &str| TrcParseError {
                line: line_no,
                reason: reason.into(),
            };
            match head {
                "MASTER" => {
                    let v = parts.next().ok_or_else(|| err("missing master id"))?;
                    trace.master = v.parse().map_err(|_| err("invalid master id"))?;
                    saw_master = true;
                }
                "PERIOD_NS" => {
                    let v = parts.next().ok_or_else(|| err("missing period"))?;
                    trace.period_ns = v.parse().map_err(|_| err("invalid period"))?;
                }
                "REQ" => {
                    let mnem = parts.next().ok_or_else(|| err("missing command"))?;
                    let cmd = match mnem {
                        "RD" => OcpCmd::Read,
                        "WR" => OcpCmd::Write,
                        "BRD" => OcpCmd::BurstRead,
                        "BWR" => OcpCmd::BurstWrite,
                        _ => return Err(err("unknown command mnemonic")),
                    };
                    let addr_s = parts.next().ok_or_else(|| err("missing address"))?;
                    let addr = parse_u32(addr_s, line_no)?;
                    let mut data = DataWords::new();
                    let mut burst: u8 = 1;
                    let mut at = None;
                    for tok in parts {
                        if let Some(l) = tok.strip_prefix("len=") {
                            burst = l.parse().map_err(|_| TrcParseError {
                                line: line_no,
                                reason: format!("invalid burst length {l:?}"),
                            })?;
                        } else if tok.starts_with('@') {
                            at = Some(parse_at(tok, line_no)?);
                        } else {
                            data = parse_words(tok, line_no)?;
                        }
                    }
                    let at = at.ok_or_else(|| err("missing timestamp"))?;
                    trace.events.push(TraceEvent::Request {
                        cmd,
                        addr,
                        data,
                        burst,
                        at,
                    });
                }
                "ACK" => {
                    let at_s = parts.next().ok_or_else(|| err("missing timestamp"))?;
                    trace.events.push(TraceEvent::Accept {
                        at: parse_at(at_s, line_no)?,
                    });
                }
                "RESP" => {
                    let first = parts.next().ok_or_else(|| err("missing payload"))?;
                    let (data, at_s) = if first.starts_with('@') {
                        (DataWords::new(), first)
                    } else {
                        let at_s = parts.next().ok_or_else(|| err("missing timestamp"))?;
                        (parse_words(first, line_no)?, at_s)
                    };
                    trace.events.push(TraceEvent::Response {
                        data,
                        at: parse_at(at_s, line_no)?,
                    });
                }
                "HALT" => {
                    let at_s = parts.next().ok_or_else(|| err("missing timestamp"))?;
                    trace.halt_at = Some(parse_at(at_s, line_no)?);
                }
                "END" => saw_end = true,
                _ => {
                    return Err(TrcParseError {
                        line: line_no,
                        reason: format!("unknown directive {head:?}"),
                    })
                }
            }
        }
        if !saw_end {
            return Err(TrcParseError {
                line: text.lines().count(),
                reason: "missing END".into(),
            });
        }
        if !saw_master {
            return Err(TrcParseError {
                line: 1,
                reason: "missing MASTER header".into(),
            });
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MasterTrace {
        MasterTrace {
            master: 2,
            period_ns: 5,
            events: vec![
                TraceEvent::Request {
                    cmd: OcpCmd::Read,
                    addr: 0x104,
                    data: vec![].into(),
                    burst: 1,
                    at: 55,
                },
                TraceEvent::Accept { at: 60 },
                TraceEvent::Response {
                    data: vec![0x088000f0].into(),
                    at: 75,
                },
                TraceEvent::Request {
                    cmd: OcpCmd::Write,
                    addr: 0x20,
                    data: vec![0x111].into(),
                    burst: 1,
                    at: 90,
                },
                TraceEvent::Accept { at: 95 },
                TraceEvent::Request {
                    cmd: OcpCmd::BurstRead,
                    addr: 0x100,
                    data: vec![].into(),
                    burst: 4,
                    at: 120,
                },
                TraceEvent::Accept { at: 125 },
                TraceEvent::Response {
                    data: vec![1, 2, 3, 4].into(),
                    at: 150,
                },
                TraceEvent::Request {
                    cmd: OcpCmd::BurstWrite,
                    addr: 0x200,
                    data: vec![9, 8].into(),
                    burst: 2,
                    at: 160,
                },
                TraceEvent::Accept { at: 170 },
            ],
            halt_at: Some(500),
        }
    }

    #[test]
    fn round_trips() {
        let tr = sample();
        let text = tr.to_trc();
        let back = MasterTrace::from_trc(&text).unwrap();
        assert_eq!(back, tr);
    }

    #[test]
    fn serialisation_is_stable() {
        // Identical traces must serialise to identical bytes — the
        // paper's validation experiment diffs translated programs, and we
        // additionally diff traces.
        assert_eq!(sample().to_trc(), sample().to_trc());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "; hello\n\nMASTER 1\nPERIOD_NS 5\n; mid comment\nEND\n";
        let tr = MasterTrace::from_trc(text).unwrap();
        assert_eq!(tr.master, 1);
        assert!(tr.events.is_empty());
    }

    #[test]
    fn missing_end_is_error() {
        let text = "MASTER 0\nPERIOD_NS 5\n";
        assert!(MasterTrace::from_trc(text).is_err());
    }

    #[test]
    fn unknown_directive_is_error() {
        let text = "MASTER 0\nPERIOD_NS 5\nBOGUS\nEND\n";
        let e = MasterTrace::from_trc(text).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn bad_number_is_error_with_line() {
        let text = "MASTER 0\nPERIOD_NS 5\nREQ RD 0xZZ @5\nEND\n";
        let e = MasterTrace::from_trc(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.reason.contains("0xZZ"));
    }

    #[test]
    fn content_after_end_is_error() {
        let text = "MASTER 0\nPERIOD_NS 5\nEND\nACK @5\n";
        assert!(MasterTrace::from_trc(text).is_err());
    }

    #[test]
    fn parses_paper_style_listing() {
        let text = "\
; polling a semaphore
MASTER 0
PERIOD_NS 5
REQ RD 0x000000ff @210
ACK @215
RESP 0x00000000 @270
REQ RD 0x000000ff @285
ACK @290
RESP 0x00000000 @310
REQ RD 0x000000ff @315
ACK @320
RESP 0x00000001 @330
END
";
        let tr = MasterTrace::from_trc(text).unwrap();
        let txs = tr.transactions().unwrap();
        assert_eq!(txs.len(), 3);
        assert_eq!(txs[2].resp_word(), 1);
    }
}

// Property tests need the external `proptest` crate; see the
// `external-deps` feature note in this crate's Cargo.toml.
#[cfg(all(test, feature = "external-deps"))]
mod robustness {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The `.trc` parser never panics on arbitrary text.
        #[test]
        fn trc_parser_never_panics(text in "\\PC{0,400}") {
            let _ = MasterTrace::from_trc(&text);
        }

        /// Anything the parser accepts re-serialises to something it
        /// accepts again, yielding the same trace.
        #[test]
        fn accepted_trc_round_trips(text in "\\PC{0,300}") {
            if let Ok(trace) = MasterTrace::from_trc(&text) {
                let printed = trace.to_trc();
                let again = MasterTrace::from_trc(&printed).expect("printed .trc parses");
                prop_assert_eq!(again, trace);
            }
        }
    }
}
