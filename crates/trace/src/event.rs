//! The in-memory trace event model.

use std::fmt;

use ntg_ocp::{DataWords, OcpCmd};
use ntg_sim::Nanos;

/// One event observed at an OCP master interface.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// The master asserted a request.
    Request {
        /// Transaction command.
        cmd: OcpCmd,
        /// Byte address.
        addr: u32,
        /// Write payload (empty for reads; inline up to
        /// [`DataWords::INLINE`] words).
        data: DataWords,
        /// Number of beats.
        burst: u8,
        /// Assert time.
        at: Nanos,
    },
    /// The network accepted the most recent request (posted writes
    /// unblock here).
    Accept {
        /// Accept time.
        at: Nanos,
    },
    /// A response was delivered towards the master.
    Response {
        /// Read payload.
        data: DataWords,
        /// Delivery time.
        at: Nanos,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> Nanos {
        match self {
            TraceEvent::Request { at, .. }
            | TraceEvent::Accept { at }
            | TraceEvent::Response { at, .. } => *at,
        }
    }
}

/// One complete transaction reconstructed from a trace.
///
/// This is the unit the trace-to-TG-program translator consumes. The
/// *unblock* instant — the moment the master resumed execution — is the
/// response time for reads and the accept time for posted writes; idle
/// gaps between transactions are measured from it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Transaction {
    /// Transaction command.
    pub cmd: OcpCmd,
    /// Byte address.
    pub addr: u32,
    /// Write payload (empty for reads).
    pub data: DataWords,
    /// Number of beats.
    pub burst: u8,
    /// Request assert time.
    pub req_at: Nanos,
    /// Request accept time.
    pub accept_at: Nanos,
    /// Response delivery time (reads only).
    pub resp_at: Option<Nanos>,
    /// Response payload (reads only).
    pub resp_data: DataWords,
}

impl Transaction {
    /// The instant the master resumed execution after this transaction.
    pub fn unblock_at(&self) -> Nanos {
        self.resp_at.unwrap_or(self.accept_at)
    }

    /// First response word (zero if none) — the value a polling loop
    /// tests.
    pub fn resp_word(&self) -> u32 {
        self.resp_data.first().copied().unwrap_or(0)
    }
}

/// A malformed event sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// An `Accept`/`Response` appeared with no request open, a second
    /// request opened before the first completed, or the trace ended
    /// mid-transaction.
    Structure {
        /// Index of the offending event (trace length if at end).
        index: usize,
        /// Human-readable description.
        reason: &'static str,
    },
    /// Timestamps went backwards.
    TimeTravel {
        /// Index of the offending event.
        index: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Structure { index, reason } => {
                write!(f, "malformed trace at event {index}: {reason}")
            }
            TraceError::TimeTravel { index } => {
                write!(f, "timestamps not monotonic at event {index}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// The event stream recorded at one master's OCP interface.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MasterTrace {
    /// The master this trace belongs to.
    pub master: u16,
    /// The clock period used to convert cycles to the nanosecond
    /// timestamps stored in the events.
    pub period_ns: u64,
    /// Events in chronological order.
    pub events: Vec<TraceEvent>,
    /// When the core finished executing its application (`HALT` in
    /// `.trc`).
    ///
    /// A core may compute for a long time after its *last* bus
    /// transaction (the paper's Cacheloop does almost nothing else); the
    /// completion timestamp lets the translator emit the trailing idle
    /// wait, so the TG's execution time matches the core's.
    pub halt_at: Option<Nanos>,
}

impl MasterTrace {
    /// Creates an empty trace for `master` with the given clock period.
    pub fn new(master: u16, period_ns: u64) -> Self {
        Self {
            master,
            period_ns,
            events: Vec::new(),
            halt_at: None,
        }
    }

    /// Groups the event stream into complete [`Transaction`]s.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the stream is not a well-formed
    /// sequence of request → accept (→ response for reads) groups with
    /// monotonic timestamps.
    pub fn transactions(&self) -> Result<Vec<Transaction>, TraceError> {
        let mut out = Vec::new();
        let mut open: Option<Transaction> = None;
        let mut last_at: Nanos = 0;
        for (index, ev) in self.events.iter().enumerate() {
            if ev.at() < last_at {
                return Err(TraceError::TimeTravel { index });
            }
            last_at = ev.at();
            match ev {
                TraceEvent::Request {
                    cmd,
                    addr,
                    data,
                    burst,
                    at,
                } => {
                    if open.is_some() {
                        return Err(TraceError::Structure {
                            index,
                            reason: "request while another transaction is open",
                        });
                    }
                    // `DataWords` clones are inline copies for payloads
                    // up to four words — the grouping pass no longer
                    // heap-allocates per transaction for short bursts.
                    open = Some(Transaction {
                        cmd: *cmd,
                        addr: *addr,
                        data: data.clone(),
                        burst: *burst,
                        req_at: *at,
                        accept_at: 0,
                        resp_at: None,
                        resp_data: DataWords::new(),
                    });
                }
                TraceEvent::Accept { at } => {
                    let Some(t) = open.as_mut() else {
                        return Err(TraceError::Structure {
                            index,
                            reason: "accept without an open request",
                        });
                    };
                    if t.accept_at != 0 {
                        return Err(TraceError::Structure {
                            index,
                            reason: "double accept",
                        });
                    }
                    t.accept_at = *at;
                    if !t.cmd.expects_response() {
                        out.push(open.take().expect("checked above"));
                    }
                }
                TraceEvent::Response { data, at } => {
                    let Some(t) = open.as_mut() else {
                        return Err(TraceError::Structure {
                            index,
                            reason: "response without an open request",
                        });
                    };
                    if t.accept_at == 0 {
                        return Err(TraceError::Structure {
                            index,
                            reason: "response before accept",
                        });
                    }
                    t.resp_at = Some(*at);
                    t.resp_data = data.clone();
                    out.push(open.take().expect("checked above"));
                }
            }
        }
        if open.is_some() {
            return Err(TraceError::Structure {
                index: self.events.len(),
                reason: "trace ends mid-transaction",
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_group(addr: u32, t0: Nanos, value: u32) -> Vec<TraceEvent> {
        vec![
            TraceEvent::Request {
                cmd: OcpCmd::Read,
                addr,
                data: DataWords::new(),
                burst: 1,
                at: t0,
            },
            TraceEvent::Accept { at: t0 + 5 },
            TraceEvent::Response {
                data: vec![value].into(),
                at: t0 + 20,
            },
        ]
    }

    #[test]
    fn groups_reads_and_posted_writes() {
        let mut tr = MasterTrace::new(0, 5);
        tr.events.extend(read_group(0x104, 55, 0x88));
        tr.events.push(TraceEvent::Request {
            cmd: OcpCmd::Write,
            addr: 0x20,
            data: vec![0x111].into(),
            burst: 1,
            at: 90,
        });
        tr.events.push(TraceEvent::Accept { at: 95 });
        let txs = tr.transactions().unwrap();
        assert_eq!(txs.len(), 2);
        assert_eq!(txs[0].unblock_at(), 75);
        assert_eq!(txs[0].resp_word(), 0x88);
        assert_eq!(txs[1].unblock_at(), 95, "write unblocks at accept");
        assert_eq!(txs[1].resp_at, None);
    }

    #[test]
    fn rejects_overlapping_requests() {
        let mut tr = MasterTrace::new(0, 5);
        tr.events.push(TraceEvent::Request {
            cmd: OcpCmd::Read,
            addr: 0,
            data: DataWords::new(),
            burst: 1,
            at: 0,
        });
        tr.events.push(TraceEvent::Request {
            cmd: OcpCmd::Read,
            addr: 4,
            data: DataWords::new(),
            burst: 1,
            at: 5,
        });
        assert!(matches!(
            tr.transactions(),
            Err(TraceError::Structure { index: 1, .. })
        ));
    }

    #[test]
    fn rejects_response_before_accept() {
        let mut tr = MasterTrace::new(0, 5);
        tr.events.push(TraceEvent::Request {
            cmd: OcpCmd::Read,
            addr: 0,
            data: DataWords::new(),
            burst: 1,
            at: 0,
        });
        tr.events.push(TraceEvent::Response {
            data: vec![1].into(),
            at: 10,
        });
        assert!(tr.transactions().is_err());
    }

    #[test]
    fn rejects_dangling_transaction() {
        let mut tr = MasterTrace::new(0, 5);
        tr.events.push(TraceEvent::Request {
            cmd: OcpCmd::Read,
            addr: 0,
            data: DataWords::new(),
            burst: 1,
            at: 0,
        });
        assert!(matches!(
            tr.transactions(),
            Err(TraceError::Structure { index: 1, .. })
        ));
    }

    #[test]
    fn rejects_time_travel() {
        let mut tr = MasterTrace::new(0, 5);
        tr.events.extend(read_group(0, 100, 1));
        tr.events.extend(read_group(4, 50, 1));
        assert!(matches!(
            tr.transactions(),
            Err(TraceError::TimeTravel { .. })
        ));
    }

    #[test]
    fn empty_trace_has_no_transactions() {
        let tr = MasterTrace::new(3, 5);
        assert_eq!(tr.transactions().unwrap(), Vec::new());
    }
}
