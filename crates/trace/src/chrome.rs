//! Chrome `trace_event` JSON export of OCP transaction timelines.
//!
//! Renders a set of [`MasterTrace`]s as the JSON object format consumed
//! by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//! track (`tid`) per master, one complete-duration event (`ph: "X"`)
//! per OCP transaction spanning request-assert → master-unblock, and an
//! instant event marking each core's halt. This makes the paper's
//! Figure 2 communication-pattern plots a first-class artifact: load
//! the exported file in a trace viewer instead of squinting at printed
//! event lists.
//!
//! Timestamps: `trace_event` wants microseconds; trace events carry
//! nanoseconds. Values are rendered as `<µs>.<ns %1000>` with integer
//! arithmetic, so output is deterministic and byte-stable across hosts.

use std::fmt::Write as _;

use crate::event::{MasterTrace, TraceError};

/// Formats a nanosecond timestamp as fractional microseconds.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// Renders `traces` as one Chrome `trace_event` JSON document.
///
/// Output is deterministic: traces render in slice order, transactions
/// in time order, and all numbers use integer formatting. The returned
/// string is a complete JSON object ready to be written to a `.json`
/// file and opened in `chrome://tracing` or Perfetto.
///
/// # Errors
///
/// Returns the underlying [`TraceError`] if any trace is not a
/// well-formed sequence of transactions.
pub fn chrome_trace_json(traces: &[MasterTrace]) -> Result<String, TraceError> {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for trace in traces {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{m},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"master {m}\"}}}}",
            m = trace.master
        );
        for tx in trace.transactions()? {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{m},\"ts\":{ts},\"dur\":{dur},\
                 \"name\":\"{cmd} 0x{addr:X}\",\"args\":{{\"cmd\":\"{cmd}\",\
                 \"addr\":\"0x{addr:X}\",\"burst\":{burst},\"accept_ts\":{acc}",
                m = trace.master,
                ts = micros(tx.req_at),
                dur = micros(tx.unblock_at() - tx.req_at),
                cmd = tx.cmd,
                addr = tx.addr,
                burst = tx.burst,
                acc = micros(tx.accept_at),
            );
            if let Some(&w) = tx.data.first() {
                let _ = write!(out, ",\"data\":\"0x{w:X}\"");
            }
            if tx.resp_at.is_some() {
                let _ = write!(out, ",\"resp\":\"0x{:X}\"", tx.resp_word());
            }
            out.push_str("}}");
        }
        if let Some(halt) = trace.halt_at {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"I\",\"pid\":0,\"tid\":{m},\"ts\":{ts},\"s\":\"t\",\
                 \"name\":\"halt\"}}",
                m = trace.master,
                ts = micros(halt),
            );
        }
    }
    out.push_str("]}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use ntg_ocp::{DataWords, OcpCmd};

    fn sample_trace() -> MasterTrace {
        let mut tr = MasterTrace::new(1, 5);
        tr.events.push(TraceEvent::Request {
            cmd: OcpCmd::Read,
            addr: 0x1000,
            data: DataWords::new(),
            burst: 1,
            at: 100,
        });
        tr.events.push(TraceEvent::Accept { at: 105 });
        tr.events.push(TraceEvent::Response {
            data: vec![0xCAFE].into(),
            at: 130,
        });
        tr.events.push(TraceEvent::Request {
            cmd: OcpCmd::Write,
            addr: 0x2000,
            data: vec![7].into(),
            burst: 1,
            at: 1500,
        });
        tr.events.push(TraceEvent::Accept { at: 1515 });
        tr.halt_at = Some(2000);
        tr
    }

    #[test]
    fn renders_the_documented_shape() {
        let json = chrome_trace_json(&[sample_trace()]).unwrap();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // Thread metadata, both transactions, the halt marker.
        assert!(json.contains("\"name\":\"master 1\""));
        assert!(json.contains("\"name\":\"RD 0x1000\""));
        assert!(json.contains("\"resp\":\"0xCAFE\""));
        assert!(json.contains("\"name\":\"WR 0x2000\""));
        assert!(json.contains("\"data\":\"0x7\""));
        assert!(json.contains("\"name\":\"halt\""));
        // 100 ns → 0.100 µs; read unblocks at the response (130 ns).
        assert!(json.contains("\"ts\":0.100,\"dur\":0.030"));
        // The write spans request → accept (1500 → 1515 ns).
        assert!(json.contains("\"ts\":1.500,\"dur\":0.015"));
    }

    #[test]
    fn export_is_deterministic() {
        let traces = [sample_trace(), MasterTrace::new(2, 5)];
        let a = chrome_trace_json(&traces).unwrap();
        let b = chrome_trace_json(&traces).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_trace_is_an_error() {
        let mut tr = MasterTrace::new(0, 5);
        tr.events.push(TraceEvent::Accept { at: 10 });
        assert!(chrome_trace_json(&[tr]).is_err());
    }

    #[test]
    fn empty_input_renders_an_empty_event_list() {
        let json = chrome_trace_json(&[]).unwrap();
        assert_eq!(json, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}");
    }
}
