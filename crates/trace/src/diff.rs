//! Structured comparison of two traces.
//!
//! Diffing traces is how this flow is debugged and validated: the paper
//! itself validates trace collection "by collecting traces with IP cores
//! running on different interconnects, and verifying the resulting .tgp
//! and .bin programs to match" — and when they do *not* match, the first
//! question is where the transaction streams diverged.

use ntg_ocp::OcpCmd;

use crate::event::{MasterTrace, TraceError, Transaction};

/// How two traces first differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDivergence {
    /// Transaction `index` differs structurally (command, address, data
    /// or burst length) — the cores did different *things*.
    Transaction {
        /// Index of the first differing transaction.
        index: usize,
        /// Short description of the difference.
        detail: String,
    },
    /// Transaction `index` matches structurally but its timing differs —
    /// same behaviour, different interconnect schedule.
    Timing {
        /// Index of the first time-shifted transaction.
        index: usize,
        /// Request-time delta in nanoseconds (b − a).
        request_delta_ns: i64,
    },
    /// One trace has more transactions than the other.
    Length {
        /// Transactions in the first trace.
        a: usize,
        /// Transactions in the second trace.
        b: usize,
    },
    /// The completion timestamps differ (or only one trace has one).
    Halt {
        /// First trace's completion time.
        a: Option<u64>,
        /// Second trace's completion time.
        b: Option<u64>,
    },
}

/// Compares two traces transaction by transaction.
///
/// Returns `None` when they are identical (including timing), otherwise
/// the *first* divergence, with structural differences reported in
/// preference to timing ones at the same index.
///
/// # Errors
///
/// Returns a [`TraceError`] if either trace is malformed.
pub fn diff(a: &MasterTrace, b: &MasterTrace) -> Result<Option<TraceDivergence>, TraceError> {
    let ta = a.transactions()?;
    let tb = b.transactions()?;
    for (index, (x, y)) in ta.iter().zip(&tb).enumerate() {
        if let Some(detail) = structural_difference(x, y) {
            return Ok(Some(TraceDivergence::Transaction { index, detail }));
        }
        if x.req_at != y.req_at {
            return Ok(Some(TraceDivergence::Timing {
                index,
                request_delta_ns: y.req_at as i64 - x.req_at as i64,
            }));
        }
        if x.accept_at != y.accept_at || x.resp_at != y.resp_at {
            return Ok(Some(TraceDivergence::Timing {
                index,
                request_delta_ns: 0,
            }));
        }
    }
    if ta.len() != tb.len() {
        return Ok(Some(TraceDivergence::Length {
            a: ta.len(),
            b: tb.len(),
        }));
    }
    if a.halt_at != b.halt_at {
        return Ok(Some(TraceDivergence::Halt {
            a: a.halt_at,
            b: b.halt_at,
        }));
    }
    Ok(None)
}

/// Compares only the *behavioural* content (commands, addresses, write
/// data, burst lengths), ignoring all timing — the invariant that must
/// hold for traces of the same program on different interconnects,
/// modulo polling repetition.
///
/// Polling repetition is normalised away by collapsing consecutive
/// identical-read runs to the configured pollable ranges, mirroring what
/// the translator does.
///
/// # Errors
///
/// Returns a [`TraceError`] if either trace is malformed.
pub fn behavioural_diff(
    a: &MasterTrace,
    b: &MasterTrace,
    pollable: &[(u32, u32)],
) -> Result<Option<TraceDivergence>, TraceError> {
    let na = normalise(a.transactions()?, pollable);
    let nb = normalise(b.transactions()?, pollable);
    for (index, (x, y)) in na.iter().zip(&nb).enumerate() {
        if let Some(detail) = structural_difference(x, y) {
            return Ok(Some(TraceDivergence::Transaction { index, detail }));
        }
    }
    if na.len() != nb.len() {
        return Ok(Some(TraceDivergence::Length {
            a: na.len(),
            b: nb.len(),
        }));
    }
    Ok(None)
}

fn is_pollable(addr: u32, ranges: &[(u32, u32)]) -> bool {
    ranges
        .iter()
        .any(|&(base, size)| addr >= base && (addr - base) < size)
}

/// Collapses consecutive single reads to the same pollable address into
/// one representative (keeping the final, successful one).
fn normalise(txs: Vec<Transaction>, pollable: &[(u32, u32)]) -> Vec<Transaction> {
    let mut out: Vec<Transaction> = Vec::with_capacity(txs.len());
    for tx in txs {
        let is_poll = tx.cmd == OcpCmd::Read && tx.burst == 1 && is_pollable(tx.addr, pollable);
        if is_poll {
            if let Some(prev) = out.last_mut() {
                if prev.cmd == OcpCmd::Read && prev.burst == 1 && prev.addr == tx.addr {
                    *prev = tx; // keep the last poll of the run
                    continue;
                }
            }
        }
        out.push(tx);
    }
    out
}

fn structural_difference(x: &Transaction, y: &Transaction) -> Option<String> {
    if x.cmd != y.cmd {
        return Some(format!("command {} vs {}", x.cmd, y.cmd));
    }
    if x.addr != y.addr {
        return Some(format!("address {:#010x} vs {:#010x}", x.addr, y.addr));
    }
    if x.burst != y.burst {
        return Some(format!("burst {} vs {}", x.burst, y.burst));
    }
    if x.data != y.data {
        return Some(format!("write data {:x?} vs {:x?}", x.data, y.data));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn read(addr: u32, t: u64, value: u32) -> [TraceEvent; 3] {
        [
            TraceEvent::Request {
                cmd: OcpCmd::Read,
                addr,
                data: vec![].into(),
                burst: 1,
                at: t,
            },
            TraceEvent::Accept { at: t + 5 },
            TraceEvent::Response {
                data: vec![value].into(),
                at: t + 20,
            },
        ]
    }

    fn trace_of(groups: &[[TraceEvent; 3]]) -> MasterTrace {
        let mut t = MasterTrace::new(0, 5);
        for g in groups {
            t.events.extend(g.iter().cloned());
        }
        t
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let a = trace_of(&[read(0x10, 0, 1), read(0x20, 100, 2)]);
        assert_eq!(diff(&a, &a.clone()).unwrap(), None);
    }

    #[test]
    fn structural_difference_wins_over_timing() {
        let a = trace_of(&[read(0x10, 0, 1)]);
        let b = trace_of(&[read(0x14, 50, 1)]);
        match diff(&a, &b).unwrap() {
            Some(TraceDivergence::Transaction { index: 0, detail }) => {
                assert!(detail.contains("address"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn timing_difference_is_reported_with_delta() {
        let a = trace_of(&[read(0x10, 0, 1), read(0x20, 100, 2)]);
        let b = trace_of(&[read(0x10, 0, 1), read(0x20, 140, 2)]);
        assert_eq!(
            diff(&a, &b).unwrap(),
            Some(TraceDivergence::Timing {
                index: 1,
                request_delta_ns: 40
            })
        );
    }

    #[test]
    fn length_difference_detected() {
        let a = trace_of(&[read(0x10, 0, 1)]);
        let b = trace_of(&[read(0x10, 0, 1), read(0x20, 100, 2)]);
        assert_eq!(
            diff(&a, &b).unwrap(),
            Some(TraceDivergence::Length { a: 1, b: 2 })
        );
    }

    #[test]
    fn halt_difference_detected() {
        let mut a = trace_of(&[read(0x10, 0, 1)]);
        let mut b = a.clone();
        a.halt_at = Some(500);
        b.halt_at = Some(600);
        assert_eq!(
            diff(&a, &b).unwrap(),
            Some(TraceDivergence::Halt {
                a: Some(500),
                b: Some(600)
            })
        );
    }

    #[test]
    fn behavioural_diff_ignores_poll_repetition() {
        // a: three polls then success; b: a single successful poll.
        let a = trace_of(&[
            read(0xF0, 0, 0),
            read(0xF0, 50, 0),
            read(0xF0, 100, 1),
            read(0x20, 200, 9),
        ]);
        let b = trace_of(&[read(0xF0, 10, 1), read(0x20, 300, 9)]);
        assert_eq!(
            behavioural_diff(&a, &b, &[(0xF0, 0x10)]).unwrap(),
            None,
            "poll repetition must be normalised away"
        );
        // …but without the pollable range, the streams diverge at the
        // second transaction (a keeps polling where b already moved on).
        assert!(matches!(
            behavioural_diff(&a, &b, &[]).unwrap(),
            Some(TraceDivergence::Transaction { index: 1, .. })
        ));
    }
}
