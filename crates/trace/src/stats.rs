//! Summary statistics over a recorded trace.

use ntg_ocp::OcpCmd;
use ntg_sim::stats::Histogram;

use crate::event::{MasterTrace, TraceError};

/// Aggregate statistics of one master's trace.
///
/// # Example
///
/// ```
/// use ntg_trace::{MasterTrace, TraceStats};
///
/// let text = "MASTER 0\nPERIOD_NS 5\nREQ WR 0x00000020 0x1 @10\nACK @20\nEND\n";
/// let trace = MasterTrace::from_trc(text)?;
/// let stats = TraceStats::from_trace(&trace)?;
/// assert_eq!(stats.writes, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Single reads.
    pub reads: u64,
    /// Posted writes.
    pub writes: u64,
    /// Burst reads (cache refills).
    pub burst_reads: u64,
    /// Burst writes.
    pub burst_writes: u64,
    /// Network round-trip latency of reads (response − request), ns.
    pub read_latency_ns: Histogram,
    /// Idle gaps between a transaction's unblock and the next request,
    /// ns.
    pub idle_gap_ns: Histogram,
    /// Total words moved (request + response payloads).
    pub data_words: u64,
}

impl TraceStats {
    /// Computes statistics over `trace`.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the trace is malformed.
    pub fn from_trace(trace: &MasterTrace) -> Result<Self, TraceError> {
        let txs = trace.transactions()?;
        let mut s = Self {
            reads: 0,
            writes: 0,
            burst_reads: 0,
            burst_writes: 0,
            read_latency_ns: Histogram::new("read_latency_ns"),
            idle_gap_ns: Histogram::new("idle_gap_ns"),
            data_words: 0,
        };
        let mut prev_unblock = None;
        for t in &txs {
            match t.cmd {
                OcpCmd::Read => s.reads += 1,
                OcpCmd::Write => s.writes += 1,
                OcpCmd::BurstRead => s.burst_reads += 1,
                OcpCmd::BurstWrite => s.burst_writes += 1,
            }
            s.data_words += (t.data.len() + t.resp_data.len()) as u64;
            if let Some(resp_at) = t.resp_at {
                s.read_latency_ns.record(resp_at - t.req_at);
            }
            if let Some(u) = prev_unblock {
                s.idle_gap_ns.record(t.req_at.saturating_sub(u));
            }
            prev_unblock = Some(t.unblock_at());
        }
        Ok(s)
    }

    /// Total transactions of all kinds.
    pub fn transactions(&self) -> u64 {
        self.reads + self.writes + self.burst_reads + self.burst_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_latencies() {
        let text = "\
MASTER 0
PERIOD_NS 5
REQ RD 0x00000104 @55
ACK @60
RESP 0x088000f0 @75
REQ WR 0x00000020 0x00000111 @90
ACK @95
REQ BRD 0x00000100 len=4 @140
ACK @145
RESP 0x1,0x2,0x3,0x4 @170
END
";
        let tr = MasterTrace::from_trc(text).unwrap();
        let s = TraceStats::from_trace(&tr).unwrap();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.burst_reads, 1);
        assert_eq!(s.transactions(), 3);
        assert_eq!(s.data_words, 1 + 1 + 4);
        assert_eq!(s.read_latency_ns.count(), 2);
        assert_eq!(s.read_latency_ns.min(), Some(20));
        assert_eq!(s.read_latency_ns.max(), Some(30));
        // Gaps: 90-75 = 15, 140-95 = 45.
        assert_eq!(s.idle_gap_ns.count(), 2);
        assert_eq!(s.idle_gap_ns.sum(), 60);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let tr = MasterTrace::new(0, 5);
        let s = TraceStats::from_trace(&tr).unwrap();
        assert_eq!(s.transactions(), 0);
        assert_eq!(s.read_latency_ns.count(), 0);
    }
}
