//! Live trace capture at an OCP master interface.

use std::cell::RefCell;
use std::rc::Rc;

use ntg_ocp::{ChannelObserver, OcpRequest, OcpResponse};
use ntg_sim::{ClockConfig, Cycle};

use crate::event::{MasterTrace, TraceEvent};

/// Shared handle to a trace being recorded.
///
/// The platform keeps one of these per traced master and reads the trace
/// out after the simulation finishes, while the [`TraceMonitor`] writing
/// into it lives inside the OCP channel.
pub type SharedTrace = Rc<RefCell<MasterTrace>>;

/// Creates an empty [`SharedTrace`] for `master`.
pub fn shared_trace(master: u16, clock: ClockConfig) -> SharedTrace {
    Rc::new(RefCell::new(MasterTrace::new(master, clock.period_ns())))
}

/// A [`ChannelObserver`] that appends every interface event to a
/// [`SharedTrace`], converting cycles to nanoseconds.
///
/// Install it on the master port whose interface should be traced:
///
/// ```
/// use ntg_ocp::{channel, MasterId, OcpRequest};
/// use ntg_sim::ClockConfig;
/// use ntg_trace::{shared_trace, TraceMonitor};
///
/// let (master, slave) = channel("cpu0", MasterId(0));
/// let trace = shared_trace(0, ClockConfig::default());
/// master.set_observer(Box::new(TraceMonitor::new(trace.clone(),
///                                                ClockConfig::default())));
/// master.assert_request(OcpRequest::read(0x104), 11); // cycle 11
/// assert_eq!(trace.borrow().events.len(), 1);
/// assert_eq!(trace.borrow().events[0].at(), 55); // 11 × 5 ns
/// ```
pub struct TraceMonitor {
    sink: SharedTrace,
    clock: ClockConfig,
}

impl TraceMonitor {
    /// Creates a monitor appending to `sink`.
    pub fn new(sink: SharedTrace, clock: ClockConfig) -> Self {
        Self { sink, clock }
    }
}

impl ChannelObserver for TraceMonitor {
    fn on_request(&mut self, now: Cycle, req: &OcpRequest) {
        self.sink.borrow_mut().events.push(TraceEvent::Request {
            cmd: req.cmd,
            addr: req.addr,
            data: req.data.clone(),
            burst: req.burst,
            at: self.clock.cycles_to_ns(now),
        });
    }

    fn on_accept(&mut self, now: Cycle, _req: &OcpRequest) {
        self.sink.borrow_mut().events.push(TraceEvent::Accept {
            at: self.clock.cycles_to_ns(now),
        });
    }

    fn on_response(&mut self, now: Cycle, resp: &OcpResponse) {
        self.sink.borrow_mut().events.push(TraceEvent::Response {
            data: resp.data.clone(),
            at: self.clock.cycles_to_ns(now),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_ocp::{channel, MasterId, OcpCmd};

    #[test]
    fn records_full_transaction_with_ns_timestamps() {
        let (m, s) = channel("cpu0", MasterId(0));
        let trace = shared_trace(0, ClockConfig::default());
        m.set_observer(Box::new(TraceMonitor::new(
            trace.clone(),
            ClockConfig::default(),
        )));

        m.assert_request(OcpRequest::read(0x104), 11);
        s.accept_request(12);
        s.push_response(OcpResponse::ok(vec![0xF0], 0), 15);
        m.take_response(16);

        let tr = trace.borrow();
        assert_eq!(tr.events.len(), 3);
        assert_eq!(
            tr.events[0],
            TraceEvent::Request {
                cmd: OcpCmd::Read,
                addr: 0x104,
                data: vec![].into(),
                burst: 1,
                at: 55,
            }
        );
        assert_eq!(tr.events[1], TraceEvent::Accept { at: 60 });
        assert_eq!(
            tr.events[2],
            TraceEvent::Response {
                data: vec![0xF0].into(),
                at: 75,
            }
        );
        let txs = tr.transactions().unwrap();
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].unblock_at(), 75);
    }

    #[test]
    fn uninstalled_monitor_records_nothing() {
        let (m, s) = channel("cpu0", MasterId(0));
        let trace = shared_trace(0, ClockConfig::default());
        // No observer installed: channel runs silently.
        m.assert_request(OcpRequest::write(0, 1), 0);
        s.accept_request(1);
        assert!(trace.borrow().events.is_empty());
    }
}
