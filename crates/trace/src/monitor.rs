//! Live trace capture at an OCP master interface.

use std::sync::{Arc, Mutex};

use ntg_ocp::{ChannelObserver, OcpRequest, OcpResponse};
use ntg_sim::{ClockConfig, Cycle};

use crate::event::{MasterTrace, TraceEvent};

/// Shared handle to a trace being recorded.
///
/// The platform keeps one of these per traced master and reads the trace
/// out after the simulation finishes, while the [`TraceMonitor`] writing
/// into it lives inside the OCP link arena. The handle is `Send`, so a
/// fully wired platform (observers included) can migrate to a campaign
/// worker thread; the mutex is uncontended during simulation because only
/// the monitor touches it until the run completes.
pub type SharedTrace = Arc<Mutex<MasterTrace>>;

/// Creates an empty [`SharedTrace`] for `master`.
pub fn shared_trace(master: u16, clock: ClockConfig) -> SharedTrace {
    Arc::new(Mutex::new(MasterTrace::new(master, clock.period_ns())))
}

/// A [`ChannelObserver`] that appends every interface event to a
/// [`SharedTrace`], converting cycles to nanoseconds.
///
/// Install it on the master port whose interface should be traced:
///
/// ```
/// use ntg_ocp::{LinkArena, MasterId, OcpRequest};
/// use ntg_sim::ClockConfig;
/// use ntg_trace::{shared_trace, TraceMonitor};
///
/// let mut net = LinkArena::new();
/// let (master, slave) = net.channel("cpu0", MasterId(0));
/// let trace = shared_trace(0, ClockConfig::default());
/// master.set_observer(&mut net, Box::new(TraceMonitor::new(trace.clone(),
///                                                          ClockConfig::default())));
/// master.assert_request(&mut net, OcpRequest::read(0x104), 11); // cycle 11
/// assert_eq!(trace.lock().unwrap().events.len(), 1);
/// assert_eq!(trace.lock().unwrap().events[0].at(), 55); // 11 × 5 ns
/// ```
pub struct TraceMonitor {
    sink: SharedTrace,
    clock: ClockConfig,
}

impl TraceMonitor {
    /// Creates a monitor appending to `sink`.
    pub fn new(sink: SharedTrace, clock: ClockConfig) -> Self {
        Self { sink, clock }
    }
}

impl ChannelObserver for TraceMonitor {
    fn on_request(&mut self, now: Cycle, req: &OcpRequest) {
        self.sink.lock().unwrap().events.push(TraceEvent::Request {
            cmd: req.cmd,
            addr: req.addr,
            data: req.data.clone(),
            burst: req.burst,
            at: self.clock.cycles_to_ns(now),
        });
    }

    fn on_accept(&mut self, now: Cycle, _req: &OcpRequest) {
        self.sink.lock().unwrap().events.push(TraceEvent::Accept {
            at: self.clock.cycles_to_ns(now),
        });
    }

    fn on_response(&mut self, now: Cycle, resp: &OcpResponse) {
        self.sink.lock().unwrap().events.push(TraceEvent::Response {
            data: resp.data.clone(),
            at: self.clock.cycles_to_ns(now),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_ocp::{LinkArena, MasterId, OcpCmd};

    #[test]
    fn records_full_transaction_with_ns_timestamps() {
        let mut net = LinkArena::new();
        let (m, s) = net.channel("cpu0", MasterId(0));
        let trace = shared_trace(0, ClockConfig::default());
        m.set_observer(
            &mut net,
            Box::new(TraceMonitor::new(trace.clone(), ClockConfig::default())),
        );

        m.assert_request(&mut net, OcpRequest::read(0x104), 11);
        s.accept_request(&mut net, 12);
        s.push_response(&mut net, OcpResponse::ok(vec![0xF0], 0), 15);
        m.take_response(&mut net, 16);

        let tr = trace.lock().unwrap();
        assert_eq!(tr.events.len(), 3);
        assert_eq!(
            tr.events[0],
            TraceEvent::Request {
                cmd: OcpCmd::Read,
                addr: 0x104,
                data: vec![].into(),
                burst: 1,
                at: 55,
            }
        );
        assert_eq!(tr.events[1], TraceEvent::Accept { at: 60 });
        assert_eq!(
            tr.events[2],
            TraceEvent::Response {
                data: vec![0xF0].into(),
                at: 75,
            }
        );
        let txs = tr.transactions().unwrap();
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].unblock_at(), 75);
    }

    #[test]
    fn uninstalled_monitor_records_nothing() {
        let mut net = LinkArena::new();
        let (m, s) = net.channel("cpu0", MasterId(0));
        let trace = shared_trace(0, ClockConfig::default());
        // No observer installed: channel runs silently.
        m.assert_request(&mut net, OcpRequest::write(0, 1), 0);
        s.accept_request(&mut net, 1);
        assert!(trace.lock().unwrap().events.is_empty());
    }
}
