//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each binary under `src/bin/` reproduces one artifact:
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `table2` | Table 2 — ARM vs TG cycles, error %, wall times, gain |
//! | `validation` | §6 experiment 1 — `.tgp` identity across interconnects |
//! | `overhead` | §6 — trace-collection and translation overhead |
//! | `figure2` | Figure 2 — OCP transaction timelines |
//! | `figure3` | Figure 3 — `.trc` listing → `.tgp` listing |
//! | `ablation_reactivity` | §3 — clone vs timeshift vs reactive accuracy |
//! | `explore` | §1 motivation — one TG program set, four interconnects |
//!
//! The benches under `benches/` (on the in-tree [`minibench`] harness)
//! measure the same ARM-vs-TG simulation-speed contrast repeatedly; the
//! `ntg-bench` binary distils a fixed subset into the checked-in
//! `BENCH_hotpath.json` performance trajectory.
//!
//! This library holds the shared machinery: running a reference
//! simulation, translating its traces, replaying with TGs, and
//! formatting result tables.

// The counting allocator behind `alloc-count` is the one place the
// workspace needs `unsafe` (GlobalAlloc is an unsafe trait); every other
// configuration keeps the blanket ban.
#![cfg_attr(not(feature = "alloc-count"), forbid(unsafe_code))]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use ntg_core::{assemble, TgImage, TgProgram, TraceTranslator, TranslationMode};
use ntg_platform::{InterconnectChoice, Platform, RunReport};
use ntg_workloads::Workload;

/// Upper bound on simulated cycles for any harness run.
pub const MAX_CYCLES: u64 = 2_000_000_000;

/// One row of the reproduced Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Number of processors.
    pub cores: usize,
    /// Cumulative execution time (cycles) with ARM-style CPU cores.
    pub arm_cycles: u64,
    /// Cumulative execution time (cycles) with traffic generators.
    pub tg_cycles: u64,
    /// Host wall time of the CPU simulation.
    pub arm_wall: Duration,
    /// Host wall time of the TG simulation.
    pub tg_wall: Duration,
}

impl Table2Row {
    /// Cycle-count error of the TG replay, percent.
    pub fn error_pct(&self) -> f64 {
        (self.tg_cycles as f64 - self.arm_cycles as f64).abs() / self.arm_cycles as f64 * 100.0
    }

    /// Simulation-time gain of the TG platform.
    pub fn gain(&self) -> f64 {
        self.arm_wall.as_secs_f64() / self.tg_wall.as_secs_f64().max(1e-9)
    }
}

/// Runs the complete TG flow for one workload/core-count and returns the
/// Table 2 row.
///
/// The wall-time comparison runs both platforms with tracing *off* (the
/// paper times plain runs; trace collection is a separate one-time cost
/// measured by the `overhead` binary). Wall times take the minimum over
/// `repeats` runs, like the paper's "averaging over multiple runs" with
/// care to suppress noise.
///
/// # Panics
///
/// Panics if any run fails to complete, a master faults, or a workload's
/// golden-model verification fails — an experiment with broken
/// functional results must not silently produce numbers.
pub fn table2_row(workload: Workload, cores: usize, repeats: usize) -> Table2Row {
    let repeats = repeats.max(1);
    // 1. Reference timing runs (tracing off).
    let mut arm_cycles = 0;
    let mut arm_wall = Duration::MAX;
    for i in 0..repeats {
        let mut p = workload
            .build_platform(cores, InterconnectChoice::Amba, false)
            .expect("build reference platform");
        let report = run_checked(&mut p, &format!("{} {cores}P ARM", workload.name()));
        if i == 0 {
            workload
                .verify(&p, cores)
                .expect("reference run must produce the golden result");
        }
        arm_cycles = report.execution_time().expect("all cores halted");
        arm_wall = arm_wall.min(report.wall_time);
    }
    // 2. One traced run + translation.
    let images = trace_and_translate(workload, cores, InterconnectChoice::Amba);
    // 3. TG timing runs.
    let mut tg_cycles = 0;
    let mut tg_wall = Duration::MAX;
    for i in 0..repeats {
        let mut p = workload
            .build_tg_platform(images.clone(), InterconnectChoice::Amba, false)
            .expect("build TG platform");
        let report = run_checked(&mut p, &format!("{} {cores}P TG", workload.name()));
        if i == 0 {
            workload
                .verify(&p, cores)
                .expect("TG replay must reproduce the golden memory image");
        }
        tg_cycles = report.execution_time().expect("all TGs halted");
        tg_wall = tg_wall.min(report.wall_time);
    }
    Table2Row {
        bench: workload.name(),
        cores,
        arm_cycles,
        tg_cycles,
        arm_wall,
        tg_wall,
    }
}

/// Runs a reference simulation with tracing and translates every core's
/// trace into an assembled TG image.
pub fn trace_and_translate(
    workload: Workload,
    cores: usize,
    interconnect: InterconnectChoice,
) -> Vec<TgImage> {
    translate_programs(workload, cores, interconnect, TranslationMode::Reactive)
        .into_iter()
        .map(|p| assemble(&p).expect("translated programs assemble"))
        .collect()
}

/// As [`trace_and_translate`], but returns the symbolic programs and
/// allows selecting the fidelity mode.
pub fn translate_programs(
    workload: Workload,
    cores: usize,
    interconnect: InterconnectChoice,
    mode: TranslationMode,
) -> Vec<TgProgram> {
    let mut p = workload
        .build_platform(cores, interconnect, true)
        .expect("build traced platform");
    run_checked(&mut p, &format!("{} {cores}P trace", workload.name()));
    let translator = TraceTranslator::new(p.translator_config(mode));
    (0..cores)
        .map(|c| {
            translator
                .translate(&p.trace(c).expect("tracing was on"))
                .expect("translate")
        })
        .collect()
}

/// Runs a platform to completion, asserting success.
///
/// # Panics
///
/// Panics if the run hits the cycle limit or any master faults.
pub fn run_checked(platform: &mut Platform, what: &str) -> RunReport {
    let report = platform.run(MAX_CYCLES);
    assert!(report.completed, "{what}: did not complete");
    assert!(
        report.faults.is_empty(),
        "{what}: faults {:?}",
        report.faults
    );
    report
}

/// Replays TG images on a given interconnect and returns the run report.
pub fn replay(
    workload: Workload,
    images: Vec<TgImage>,
    interconnect: InterconnectChoice,
) -> RunReport {
    let mut p = workload
        .build_tg_platform(images, interconnect, false)
        .expect("build TG platform");
    run_checked(
        &mut p,
        &format!("{} replay on {interconnect}", workload.name()),
    )
}

/// Formats a slice of rows as the paper's Table 2.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str("#IPs | Cumulative Execution Time          | Simulation Time\n");
    out.push_str("     | ARM          TG           Error    | ARM        TG         Gain\n");
    let mut last_bench = "";
    for r in rows {
        if r.bench != last_bench {
            out.push_str(&format!("{}:\n", r.bench));
            last_bench = r.bench;
        }
        out.push_str(&format!(
            "{:>3}P | {:>12} {:>12} {:>7.2}% | {:>8.3}s {:>8.3}s {:>6.2}x\n",
            r.cores,
            r.arm_cycles,
            r.tg_cycles,
            r.error_pct(),
            r.arm_wall.as_secs_f64(),
            r.tg_wall.as_secs_f64(),
            r.gain(),
        ));
    }
    out
}

/// The workload sizes used for the full Table 2 reproduction.
///
/// Scaled so the whole sweep runs in minutes on a laptop while keeping
/// every phenomenon of the paper's table (near-zero error, gain rising
/// with cores for Cacheloop, gain sagging under bus saturation for
/// MP matrix / DES).
pub fn paper_workloads() -> Vec<Workload> {
    vec![
        Workload::SpMatrix { n: 16 },
        Workload::Cacheloop { iterations: 60_000 },
        Workload::MpMatrix { n: 24 },
        Workload::Des {
            blocks_per_core: 24,
        },
    ]
}

/// Smaller sizes for quick smoke runs and Criterion benches.
pub fn quick_workloads() -> Vec<Workload> {
    vec![
        Workload::SpMatrix { n: 8 },
        Workload::Cacheloop { iterations: 5_000 },
        Workload::MpMatrix { n: 12 },
        Workload::Des { blocks_per_core: 4 },
    ]
}

/// Measures host wall time of a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed())
}

/// Median of a sample of durations. Empty samples yield zero.
pub fn median(samples: &mut [Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Peak resident set size of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`), or `None` on platforms without procfs.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Minimal stand-in for the slice of the Criterion API the `benches/`
/// targets use, so they build (and run) without registry access.
///
/// The workspace is offline-first: Criterion cannot be fetched, but the
/// bench targets should still compile under `--features external-deps`
/// (CI checks exactly that) and produce usable numbers when run. This
/// module implements `Criterion::benchmark_group`, group `sample_size` /
/// `measurement_time` / `bench_function`, and `Bencher::iter` with
/// median-of-samples reporting — the full surface those files touch. If
/// the real Criterion is ever restored as a dev-dependency, switching
/// back is a one-line import change per bench.
pub mod minibench {
    use std::time::{Duration, Instant};

    pub use crate::{criterion_group, criterion_main};

    /// Bench context; collects nothing globally, groups do the work.
    #[derive(Default)]
    pub struct Criterion;

    impl Criterion {
        /// Starts a named group of related measurements.
        pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
            println!("group {name}");
            BenchmarkGroup {
                sample_size: 10,
                measurement_time: Duration::from_secs(3),
            }
        }
    }

    /// A named set of measurements sharing sampling parameters.
    pub struct BenchmarkGroup {
        sample_size: usize,
        measurement_time: Duration,
    }

    impl BenchmarkGroup {
        /// Number of timed samples per benchmark.
        pub fn sample_size(&mut self, n: usize) -> &mut Self {
            self.sample_size = n.max(1);
            self
        }

        /// Soft cap on total measurement time per benchmark.
        pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
            self.measurement_time = t;
            self
        }

        /// As [`bench_function`](Self::bench_function), with a borrowed
        /// input threaded through to the closure.
        pub fn bench_with_input<I: ?Sized>(
            &mut self,
            id: impl std::fmt::Display,
            input: &I,
            mut f: impl FnMut(&mut Bencher, &I),
        ) -> &mut Self {
            self.bench_function(id, |b| f(b, input))
        }

        /// Runs one benchmark and prints its median/mean sample time.
        pub fn bench_function(
            &mut self,
            name: impl std::fmt::Display,
            mut f: impl FnMut(&mut Bencher),
        ) -> &mut Self {
            let mut b = Bencher {
                samples: Vec::with_capacity(self.sample_size),
            };
            // One untimed warmup pass, then sample until either the
            // sample budget or the time budget runs out.
            f(&mut b);
            b.samples.clear();
            let start = Instant::now();
            while b.samples.len() < self.sample_size && start.elapsed() < self.measurement_time {
                f(&mut b);
            }
            let mean = b.samples.iter().sum::<Duration>() / b.samples.len().max(1) as u32;
            let med = crate::median(&mut b.samples);
            println!(
                "  {name}: median {:>12.6}s  mean {:>12.6}s  ({} samples)",
                med.as_secs_f64(),
                mean.as_secs_f64(),
                b.samples.len(),
            );
            self
        }

        /// Ends the group (parity with Criterion; nothing to flush).
        pub fn finish(&mut self) {}
    }

    /// A benchmark identifier combining a function name and a parameter,
    /// mirroring Criterion's type of the same name.
    pub struct BenchmarkId(String);

    impl BenchmarkId {
        /// `name/parameter`.
        pub fn new(name: &str, parameter: impl std::fmt::Display) -> Self {
            Self(format!("{name}/{parameter}"))
        }

        /// Just the parameter (for single-function sweeps).
        pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
            Self(parameter.to_string())
        }
    }

    impl std::fmt::Display for BenchmarkId {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Passed to the closure under measurement; times `iter` bodies.
    pub struct Bencher {
        samples: Vec<Duration>,
    }

    impl Bencher {
        /// Times one execution of `f` per call and records the sample.
        pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
            let start = Instant::now();
            let v = f();
            self.samples.push(start.elapsed());
            drop(v);
        }
    }

    /// Builds a runner function from benchmark functions, mirroring
    /// Criterion's macro of the same name.
    #[macro_export]
    macro_rules! criterion_group {
        ($name:ident, $($target:path),+ $(,)?) => {
            fn $name() {
                let mut c = $crate::minibench::Criterion::default();
                $( $target(&mut c); )+
            }
        };
    }

    /// Emits `main` for a bench binary, mirroring Criterion's macro.
    #[macro_export]
    macro_rules! criterion_main {
        ($($group:path),+ $(,)?) => {
            fn main() {
                $( $group(); )+
            }
        };
    }
}

/// Heap-allocation accounting via a counting global allocator.
///
/// Enabled with `--features alloc-count`; the module still exists (with
/// counters pinned at zero and [`enabled`](alloc_count::enabled) false)
/// when the feature is off, so callers need no `cfg` of their own.
pub mod alloc_count {
    #[cfg(feature = "alloc-count")]
    mod imp {
        use std::alloc::{GlobalAlloc, Layout, System};
        use std::sync::atomic::{AtomicU64, Ordering};

        static ALLOCS: AtomicU64 = AtomicU64::new(0);
        static BYTES: AtomicU64 = AtomicU64::new(0);

        /// Forwards to [`System`], counting every allocation.
        ///
        /// `dealloc` is deliberately not counted: the regression tests
        /// assert on *allocations performed*, and frees of warmup-era
        /// buffers would otherwise mask fresh churn.
        pub struct CountingAlloc;

        // SAFETY: every method forwards verbatim to `System`; the only
        // additions are relaxed atomic increments, which cannot violate
        // the GlobalAlloc contract.
        unsafe impl GlobalAlloc for CountingAlloc {
            unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
                ALLOCS.fetch_add(1, Ordering::Relaxed);
                BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
                unsafe { System.alloc(layout) }
            }

            unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
                unsafe { System.dealloc(ptr, layout) }
            }

            unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
                ALLOCS.fetch_add(1, Ordering::Relaxed);
                BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
                unsafe { System.realloc(ptr, layout, new_size) }
            }
        }

        #[global_allocator]
        static COUNTER: CountingAlloc = CountingAlloc;

        pub fn allocations() -> u64 {
            ALLOCS.load(Ordering::Relaxed)
        }

        pub fn bytes() -> u64 {
            BYTES.load(Ordering::Relaxed)
        }
    }

    /// Total heap allocations performed by this process so far.
    pub fn allocations() -> u64 {
        #[cfg(feature = "alloc-count")]
        {
            imp::allocations()
        }
        #[cfg(not(feature = "alloc-count"))]
        {
            0
        }
    }

    /// Total bytes requested from the allocator so far.
    pub fn bytes() -> u64 {
        #[cfg(feature = "alloc-count")]
        {
            imp::bytes()
        }
        #[cfg(not(feature = "alloc-count"))]
        {
            0
        }
    }

    /// Whether the counting allocator is actually installed.
    pub fn enabled() -> bool {
        cfg!(feature = "alloc-count")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_row_for_tiny_sp_matrix() {
        let row = table2_row(Workload::SpMatrix { n: 4 }, 1, 1);
        assert_eq!(row.bench, "SP matrix");
        assert!(row.arm_cycles > 0);
        assert!(row.error_pct() < 2.0, "error {}%", row.error_pct());
    }

    #[test]
    fn formatting_contains_all_rows() {
        let rows = vec![
            Table2Row {
                bench: "SP matrix",
                cores: 1,
                arm_cycles: 1000,
                tg_cycles: 1001,
                arm_wall: Duration::from_millis(10),
                tg_wall: Duration::from_millis(5),
            },
            Table2Row {
                bench: "DES",
                cores: 4,
                arm_cycles: 2000,
                tg_cycles: 2000,
                arm_wall: Duration::from_millis(20),
                tg_wall: Duration::from_millis(10),
            },
        ];
        let s = format_table2(&rows);
        assert!(s.contains("SP matrix:"));
        assert!(s.contains("DES:"));
        assert!(s.contains("2.00x"));
    }
}
