//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each binary under `src/bin/` reproduces one artifact:
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `table2` | Table 2 — ARM vs TG cycles, error %, wall times, gain |
//! | `validation` | §6 experiment 1 — `.tgp` identity across interconnects |
//! | `overhead` | §6 — trace-collection and translation overhead |
//! | `figure2` | Figure 2 — OCP transaction timelines |
//! | `figure3` | Figure 3 — `.trc` listing → `.tgp` listing |
//! | `ablation_reactivity` | §3 — clone vs timeshift vs reactive accuracy |
//! | `explore` | §1 motivation — one TG program set, four interconnects |
//!
//! The Criterion benches under `benches/` measure the same ARM-vs-TG
//! simulation-speed contrast with statistical rigour.
//!
//! This library holds the shared machinery: running a reference
//! simulation, translating its traces, replaying with TGs, and
//! formatting result tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use ntg_core::{assemble, TgImage, TgProgram, TraceTranslator, TranslationMode};
use ntg_platform::{InterconnectChoice, Platform, RunReport};
use ntg_workloads::Workload;

/// Upper bound on simulated cycles for any harness run.
pub const MAX_CYCLES: u64 = 2_000_000_000;

/// One row of the reproduced Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Number of processors.
    pub cores: usize,
    /// Cumulative execution time (cycles) with ARM-style CPU cores.
    pub arm_cycles: u64,
    /// Cumulative execution time (cycles) with traffic generators.
    pub tg_cycles: u64,
    /// Host wall time of the CPU simulation.
    pub arm_wall: Duration,
    /// Host wall time of the TG simulation.
    pub tg_wall: Duration,
}

impl Table2Row {
    /// Cycle-count error of the TG replay, percent.
    pub fn error_pct(&self) -> f64 {
        (self.tg_cycles as f64 - self.arm_cycles as f64).abs() / self.arm_cycles as f64 * 100.0
    }

    /// Simulation-time gain of the TG platform.
    pub fn gain(&self) -> f64 {
        self.arm_wall.as_secs_f64() / self.tg_wall.as_secs_f64().max(1e-9)
    }
}

/// Runs the complete TG flow for one workload/core-count and returns the
/// Table 2 row.
///
/// The wall-time comparison runs both platforms with tracing *off* (the
/// paper times plain runs; trace collection is a separate one-time cost
/// measured by the `overhead` binary). Wall times take the minimum over
/// `repeats` runs, like the paper's "averaging over multiple runs" with
/// care to suppress noise.
///
/// # Panics
///
/// Panics if any run fails to complete, a master faults, or a workload's
/// golden-model verification fails — an experiment with broken
/// functional results must not silently produce numbers.
pub fn table2_row(workload: Workload, cores: usize, repeats: usize) -> Table2Row {
    let repeats = repeats.max(1);
    // 1. Reference timing runs (tracing off).
    let mut arm_cycles = 0;
    let mut arm_wall = Duration::MAX;
    for i in 0..repeats {
        let mut p = workload
            .build_platform(cores, InterconnectChoice::Amba, false)
            .expect("build reference platform");
        let report = run_checked(&mut p, &format!("{} {cores}P ARM", workload.name()));
        if i == 0 {
            workload
                .verify(&p, cores)
                .expect("reference run must produce the golden result");
        }
        arm_cycles = report.execution_time().expect("all cores halted");
        arm_wall = arm_wall.min(report.wall_time);
    }
    // 2. One traced run + translation.
    let images = trace_and_translate(workload, cores, InterconnectChoice::Amba);
    // 3. TG timing runs.
    let mut tg_cycles = 0;
    let mut tg_wall = Duration::MAX;
    for i in 0..repeats {
        let mut p = workload
            .build_tg_platform(images.clone(), InterconnectChoice::Amba, false)
            .expect("build TG platform");
        let report = run_checked(&mut p, &format!("{} {cores}P TG", workload.name()));
        if i == 0 {
            workload
                .verify(&p, cores)
                .expect("TG replay must reproduce the golden memory image");
        }
        tg_cycles = report.execution_time().expect("all TGs halted");
        tg_wall = tg_wall.min(report.wall_time);
    }
    Table2Row {
        bench: workload.name(),
        cores,
        arm_cycles,
        tg_cycles,
        arm_wall,
        tg_wall,
    }
}

/// Runs a reference simulation with tracing and translates every core's
/// trace into an assembled TG image.
pub fn trace_and_translate(
    workload: Workload,
    cores: usize,
    interconnect: InterconnectChoice,
) -> Vec<TgImage> {
    translate_programs(workload, cores, interconnect, TranslationMode::Reactive)
        .into_iter()
        .map(|p| assemble(&p).expect("translated programs assemble"))
        .collect()
}

/// As [`trace_and_translate`], but returns the symbolic programs and
/// allows selecting the fidelity mode.
pub fn translate_programs(
    workload: Workload,
    cores: usize,
    interconnect: InterconnectChoice,
    mode: TranslationMode,
) -> Vec<TgProgram> {
    let mut p = workload
        .build_platform(cores, interconnect, true)
        .expect("build traced platform");
    run_checked(&mut p, &format!("{} {cores}P trace", workload.name()));
    let translator = TraceTranslator::new(p.translator_config(mode));
    (0..cores)
        .map(|c| {
            translator
                .translate(&p.trace(c).expect("tracing was on"))
                .expect("translate")
        })
        .collect()
}

/// Runs a platform to completion, asserting success.
///
/// # Panics
///
/// Panics if the run hits the cycle limit or any master faults.
pub fn run_checked(platform: &mut Platform, what: &str) -> RunReport {
    let report = platform.run(MAX_CYCLES);
    assert!(report.completed, "{what}: did not complete");
    assert!(
        report.faults.is_empty(),
        "{what}: faults {:?}",
        report.faults
    );
    report
}

/// Replays TG images on a given interconnect and returns the run report.
pub fn replay(
    workload: Workload,
    images: Vec<TgImage>,
    interconnect: InterconnectChoice,
) -> RunReport {
    let mut p = workload
        .build_tg_platform(images, interconnect, false)
        .expect("build TG platform");
    run_checked(
        &mut p,
        &format!("{} replay on {interconnect}", workload.name()),
    )
}

/// Formats a slice of rows as the paper's Table 2.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str("#IPs | Cumulative Execution Time          | Simulation Time\n");
    out.push_str("     | ARM          TG           Error    | ARM        TG         Gain\n");
    let mut last_bench = "";
    for r in rows {
        if r.bench != last_bench {
            out.push_str(&format!("{}:\n", r.bench));
            last_bench = r.bench;
        }
        out.push_str(&format!(
            "{:>3}P | {:>12} {:>12} {:>7.2}% | {:>8.3}s {:>8.3}s {:>6.2}x\n",
            r.cores,
            r.arm_cycles,
            r.tg_cycles,
            r.error_pct(),
            r.arm_wall.as_secs_f64(),
            r.tg_wall.as_secs_f64(),
            r.gain(),
        ));
    }
    out
}

/// The workload sizes used for the full Table 2 reproduction.
///
/// Scaled so the whole sweep runs in minutes on a laptop while keeping
/// every phenomenon of the paper's table (near-zero error, gain rising
/// with cores for Cacheloop, gain sagging under bus saturation for
/// MP matrix / DES).
pub fn paper_workloads() -> Vec<Workload> {
    vec![
        Workload::SpMatrix { n: 16 },
        Workload::Cacheloop { iterations: 60_000 },
        Workload::MpMatrix { n: 24 },
        Workload::Des {
            blocks_per_core: 24,
        },
    ]
}

/// Smaller sizes for quick smoke runs and Criterion benches.
pub fn quick_workloads() -> Vec<Workload> {
    vec![
        Workload::SpMatrix { n: 8 },
        Workload::Cacheloop { iterations: 5_000 },
        Workload::MpMatrix { n: 12 },
        Workload::Des { blocks_per_core: 4 },
    ]
}

/// Measures host wall time of a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_row_for_tiny_sp_matrix() {
        let row = table2_row(Workload::SpMatrix { n: 4 }, 1, 1);
        assert_eq!(row.bench, "SP matrix");
        assert!(row.arm_cycles > 0);
        assert!(row.error_pct() < 2.0, "error {}%", row.error_pct());
    }

    #[test]
    fn formatting_contains_all_rows() {
        let rows = vec![
            Table2Row {
                bench: "SP matrix",
                cores: 1,
                arm_cycles: 1000,
                tg_cycles: 1001,
                arm_wall: Duration::from_millis(10),
                tg_wall: Duration::from_millis(5),
            },
            Table2Row {
                bench: "DES",
                cores: 4,
                arm_cycles: 2000,
                tg_cycles: 2000,
                arm_wall: Duration::from_millis(20),
                tg_wall: Duration::from_millis(10),
            },
        ];
        let s = format_table2(&rows);
        assert!(s.contains("SP matrix:"));
        assert!(s.contains("DES:"));
        assert!(s.contains("2.00x"));
    }
}
