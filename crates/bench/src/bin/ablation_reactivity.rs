//! Ablation over the paper's three traffic-modelling fidelity levels
//! (§3): **clone** vs **timeshift** vs **reactive**.
//!
//! Traces are collected on AMBA, translated at each fidelity level, and
//! replayed (a) on the same AMBA interconnect and (b) on the ×pipes NoC.
//! The paper's argument, quantified:
//!
//! * cloning degrades as soon as latencies change;
//! * timeshifting absorbs latency changes but cannot adapt the *number*
//!   of transactions, so synchronisation-heavy workloads degrade;
//! * the reactive model tracks both.
//!
//! For the cross-interconnect replay there is no ground-truth "error"
//! against the AMBA reference — instead we compare against a *native*
//! CPU run on ×pipes, which is exactly the simulation the TG is supposed
//! to substitute. The `ntg-explore` engine does that pairing itself:
//! each TG job's `error_pct` is computed against the CPU job with the
//! same (workload, cores, interconnect), and the trace is collected once
//! and translated once per fidelity level (three image-cache misses).
//!
//! Usage: `cargo run --release -p ntg-bench --bin ablation_reactivity`

use ntg_core::TranslationMode;
use ntg_explore::{run_campaign, CampaignSpec, CoreSelection, MasterChoice, RunOptions};
use ntg_platform::InterconnectChoice;
use ntg_workloads::Workload;

fn main() {
    let workload = Workload::MpMatrix { n: 16 };
    let cores = 4;
    println!(
        "Reactivity ablation — {} {}P, traces collected on AMBA\n",
        workload.name(),
        cores
    );

    let mut spec = CampaignSpec::new("ablation-reactivity");
    spec.workloads = vec![workload];
    spec.cores = CoreSelection::List(vec![cores]);
    spec.interconnects = vec![InterconnectChoice::Amba, InterconnectChoice::Xpipes];
    spec.masters = vec![MasterChoice::Cpu, MasterChoice::Tg];
    spec.modes = vec![
        TranslationMode::Clone,
        TranslationMode::Timeshift,
        TranslationMode::Reactive,
    ];

    let outcome = run_campaign(&spec, &RunOptions::default()).expect("campaign ran");
    for r in &outcome.results {
        assert!(r.error.is_none(), "{}: {:?}", r.key, r.error);
        assert!(r.completed, "{} did not complete", r.key);
    }

    for fabric in ["amba", "xpipes"] {
        let native = outcome
            .results
            .iter()
            .find(|r| r.master == "cpu" && r.interconnect == fabric)
            .expect("native reference ran");
        println!(
            "native CPU cycles on {fabric}: {}",
            native.cycles.expect("completed")
        );
    }

    println!("\nreplay on AMBA (same interconnect as the trace):");
    print_modes(&outcome.results, "amba");
    println!("\nreplay on xpipes (different interconnect — the DSE case):");
    print_modes(&outcome.results, "xpipes");
    println!(
        "\nExpected shape (paper §3): reactive ≤ timeshift ≤ clone in error, \
         with the gap widening on the foreign interconnect."
    );
    println!("{}", outcome.cache.summary_line());
}

fn print_modes(results: &[ntg_explore::JobResult], fabric: &str) {
    for r in results
        .iter()
        .filter(|r| r.master == "tg" && r.interconnect == fabric)
    {
        println!(
            "  {:<10} {:>10} cycles   error vs native {:>6.2}%",
            r.mode.as_deref().unwrap_or("-"),
            r.cycles.expect("completed"),
            r.error_pct.expect("engine paired the native reference"),
        );
    }
}
