//! Ablation over the paper's three traffic-modelling fidelity levels
//! (§3): **clone** vs **timeshift** vs **reactive**.
//!
//! Traces are collected on AMBA, translated at each fidelity level, and
//! replayed (a) on the same AMBA interconnect and (b) on the ×pipes NoC.
//! The paper's argument, quantified:
//!
//! * cloning degrades as soon as latencies change;
//! * timeshifting absorbs latency changes but cannot adapt the *number*
//!   of transactions, so synchronisation-heavy workloads degrade;
//! * the reactive model tracks both.
//!
//! For the cross-interconnect replay there is no ground-truth "error"
//! against the AMBA reference — instead we compare against a *native*
//! CPU run on ×pipes, which is exactly the simulation the TG is supposed
//! to substitute.
//!
//! Usage: `cargo run --release -p ntg-bench --bin ablation_reactivity`

use ntg_bench::{run_checked, translate_programs};
use ntg_core::{assemble, TranslationMode};
use ntg_platform::InterconnectChoice;
use ntg_workloads::Workload;

fn replay_cycles(
    workload: Workload,
    cores: usize,
    mode: TranslationMode,
    fabric: InterconnectChoice,
) -> u64 {
    let images: Vec<_> = translate_programs(workload, cores, InterconnectChoice::Amba, mode)
        .iter()
        .map(|p| assemble(p).expect("assemble"))
        .collect();
    let mut p = workload
        .build_tg_platform(images, fabric, false)
        .expect("build TG platform");
    let report = p.run(ntg_bench::MAX_CYCLES);
    assert!(report.completed, "{mode:?} on {fabric} did not complete");
    report.execution_time().expect("all TGs halted")
}

fn native_cycles(workload: Workload, cores: usize, fabric: InterconnectChoice) -> u64 {
    let mut p = workload
        .build_platform(cores, fabric, false)
        .expect("build");
    run_checked(&mut p, "native")
        .execution_time()
        .expect("halted")
}

fn pct(reference: u64, value: u64) -> f64 {
    (value as f64 - reference as f64).abs() / reference as f64 * 100.0
}

fn main() {
    let workload = Workload::MpMatrix { n: 16 };
    let cores = 4;
    println!(
        "Reactivity ablation — {} {}P, traces collected on AMBA\n",
        workload.name(),
        cores
    );

    let modes = [
        TranslationMode::Clone,
        TranslationMode::Timeshift,
        TranslationMode::Reactive,
    ];

    let amba_ref = native_cycles(workload, cores, InterconnectChoice::Amba);
    println!("native CPU cycles on AMBA  : {amba_ref}");
    let xpipes_ref = native_cycles(workload, cores, InterconnectChoice::Xpipes);
    println!("native CPU cycles on xpipes: {xpipes_ref}\n");

    println!("replay on AMBA (same interconnect as the trace):");
    for mode in modes {
        let cycles = replay_cycles(workload, cores, mode, InterconnectChoice::Amba);
        println!(
            "  {mode:<10?} {cycles:>10} cycles   error vs native {:>6.2}%",
            pct(amba_ref, cycles)
        );
    }

    println!("\nreplay on xpipes (different interconnect — the DSE case):");
    for mode in modes {
        let cycles = replay_cycles(workload, cores, mode, InterconnectChoice::Xpipes);
        println!(
            "  {mode:<10?} {cycles:>10} cycles   error vs native {:>6.2}%",
            pct(xpipes_ref, cycles)
        );
    }
    println!(
        "\nExpected shape (paper §3): reactive ≤ timeshift ≤ clone in error, \
         with the gap widening on the foreign interconnect."
    );
}
