//! Ablation against the related-work baseline (paper §2): **stochastic**
//! traffic models vs **trace-driven reactive** TGs.
//!
//! The paper dismisses stochastic generators because "the characteristics
//! (functionality and timing) of the IP core are not captured, such
//! models are unreliable for optimizing NoC features". This experiment
//! quantifies that: a stochastic source is *calibrated to the same
//! aggregate load* as the real MP matrix cores (same transaction count,
//! same mean gap, same read/write/burst mix, same address ranges), and
//! both stand-ins are asked the DSE question the TG flow exists for:
//! *how does each interconnect rank for this application?*
//!
//! A thin frontend over the `ntg-explore` campaign engine: one campaign
//! with cpu/tg/stochastic masters across three fabrics. The engine
//! derives the stochastic calibration from the cached reference trace
//! (one trace build serves all nine jobs) and computes each stand-in's
//! error against the native CPU run on the same fabric.
//!
//! Usage: `cargo run --release -p ntg-bench --bin ablation_stochastic`

use ntg_explore::{run_campaign, CampaignSpec, CoreSelection, JobResult, MasterChoice, RunOptions};
use ntg_platform::InterconnectChoice;
use ntg_workloads::Workload;

const FABRICS: [InterconnectChoice; 3] = [
    InterconnectChoice::Amba,
    InterconnectChoice::Crossbar,
    InterconnectChoice::Xpipes,
];

fn main() {
    let workload = Workload::MpMatrix { n: 16 };
    let cores = 4;

    let mut spec = CampaignSpec::new("ablation-stochastic");
    spec.workloads = vec![workload];
    spec.cores = CoreSelection::List(vec![cores]);
    spec.interconnects = FABRICS.to_vec();
    spec.masters = vec![
        MasterChoice::Cpu,
        MasterChoice::Tg,
        MasterChoice::Stochastic,
    ];

    let outcome = run_campaign(&spec, &RunOptions::default()).expect("campaign ran");
    for r in &outcome.results {
        assert!(r.error.is_none(), "{}: {:?}", r.key, r.error);
        assert!(r.completed, "{} did not complete", r.key);
    }
    let cycles_of = |master: &str, fabric: &str| -> u64 {
        outcome
            .results
            .iter()
            .find(|r| r.master == master && r.interconnect == fabric)
            .and_then(|r| r.cycles)
            .expect("job completed")
    };
    let err_of = |master: &str, fabric: &str| -> f64 {
        outcome
            .results
            .iter()
            .find(|r| r.master == master && r.interconnect == fabric)
            .and_then(|r| r.error_pct)
            .expect("engine paired the native reference")
    };

    println!(
        "Stochastic baseline vs trace-driven TGs — {} {}P\n",
        workload.name(),
        cores
    );
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "fabric", "CPU (truth)", "TG replay", "stochastic", "TG err", "stoch err"
    );
    let mut truth_order = Vec::new();
    let mut tg_order = Vec::new();
    let mut stoch_order = Vec::new();
    for fabric in FABRICS {
        let f = fabric.to_string();
        let truth = cycles_of("cpu", &f);
        let tg = cycles_of("tg", &f);
        let stoch = cycles_of("stochastic", &f);
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>11.2}% {:>11.2}%",
            f,
            truth,
            tg,
            stoch,
            err_of("tg", &f),
            err_of("stochastic", &f)
        );
        truth_order.push((fabric, truth));
        tg_order.push((fabric, tg));
        stoch_order.push((fabric, stoch));
    }

    let rank = |mut v: Vec<(InterconnectChoice, u64)>| -> Vec<String> {
        v.sort_by_key(|&(_, c)| c);
        v.into_iter().map(|(f, _)| f.to_string()).collect()
    };
    let truth_rank = rank(truth_order);
    let tg_rank = rank(tg_order);
    let stoch_rank = rank(stoch_order);
    println!("\nfabric ranking (fastest first):");
    println!("  ground truth : {truth_rank:?}");
    println!(
        "  TG replay    : {tg_rank:?}  {}",
        if tg_rank == truth_rank {
            "(matches)"
        } else {
            "(MISRANKED)"
        }
    );
    println!(
        "  stochastic   : {stoch_rank:?}  {}",
        if stoch_rank == truth_rank {
            "(matches)"
        } else {
            "(MISRANKED)"
        }
    );

    let tg_worst = worst_err(&outcome.results, "tg");
    let stoch_worst = worst_err(&outcome.results, "stochastic");
    println!(
        "\nThe stochastic model carries the right aggregate load but no \
         program structure and no reactivity — worst-case completion-time \
         error {stoch_worst:.1}% vs the reactive TG's {tg_worst:.1}% — the \
         paper's §2 argument, quantified."
    );
    println!("{}", outcome.cache.summary_line());
}

fn worst_err(results: &[JobResult], master: &str) -> f64 {
    results
        .iter()
        .filter(|r| r.master == master)
        .filter_map(|r| r.error_pct)
        .fold(0.0, f64::max)
}
