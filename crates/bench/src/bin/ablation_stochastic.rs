//! Ablation against the related-work baseline (paper §2): **stochastic**
//! traffic models vs **trace-driven reactive** TGs.
//!
//! The paper dismisses stochastic generators because "the characteristics
//! (functionality and timing) of the IP core are not captured, such
//! models are unreliable for optimizing NoC features". This experiment
//! quantifies that: a stochastic source is *calibrated to the same
//! aggregate load* as the real MP matrix cores (same transaction count,
//! same mean gap, same read/write/burst mix, same address ranges), and
//! both stand-ins are asked the DSE question the TG flow exists for:
//! *how does each interconnect rank for this application?*
//!
//! Usage: `cargo run --release -p ntg-bench --bin ablation_stochastic`

use ntg_bench::{run_checked, trace_and_translate};
use ntg_core::{GapDistribution, StochasticConfig};
use ntg_ocp::OcpCmd;
use ntg_platform::{InterconnectChoice, PlatformBuilder};
use ntg_trace::TraceStats;
use ntg_workloads::Workload;

const FABRICS: [InterconnectChoice; 3] = [
    InterconnectChoice::Amba,
    InterconnectChoice::Crossbar,
    InterconnectChoice::Xpipes,
];

fn main() {
    let workload = Workload::MpMatrix { n: 16 };
    let cores = 4;

    // Reference CPU run on AMBA: the ground truth, plus the statistics a
    // stochastic modeller would calibrate against.
    let mut reference = workload
        .build_platform(cores, InterconnectChoice::Amba, true)
        .expect("build");
    run_checked(&mut reference, "reference");
    let traces: Vec<_> = (0..cores).map(|c| reference.trace(c).expect("traced")).collect();
    let per_core_cfg: Vec<StochasticConfig> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let stats = TraceStats::from_trace(t).expect("stats");
            let txs = stats.transactions();
            let mean_gap_cycles =
                (stats.idle_gap_ns.mean().unwrap_or(0.0) / 5.0).round() as u32;
            // Address ranges actually touched: private band + shared +
            // semaphores (approximated from the platform map).
            let ranges = reference
                .map()
                .iter()
                .map(|r| (r.base, r.size))
                .collect();
            let reads = stats.reads + stats.burst_reads;
            let writes = stats.writes + stats.burst_writes;
            StochasticConfig {
                seed: 0xC0FFEE + i as u64,
                ranges,
                write_fraction: writes as f64 / (reads + writes).max(1) as f64,
                burst_fraction: (stats.burst_reads + stats.burst_writes) as f64
                    / txs.max(1) as f64,
                gap: GapDistribution::Geometric {
                    mean: mean_gap_cycles.max(1),
                },
                transactions: txs,
            }
        })
        .collect();
    let images = trace_and_translate(workload, cores, InterconnectChoice::Amba);

    println!(
        "Stochastic baseline vs trace-driven TGs — {} {}P\n",
        workload.name(),
        cores
    );
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "fabric", "CPU (truth)", "TG replay", "stochastic", "TG err", "stoch err"
    );
    let mut truth_order = Vec::new();
    let mut stoch_order = Vec::new();
    let mut tg_order = Vec::new();
    for fabric in FABRICS {
        // Ground truth: real cores.
        let mut p = workload.build_platform(cores, fabric, false).expect("build");
        let truth = run_checked(&mut p, "cpu").execution_time().expect("halted");
        // Trace-driven TGs.
        let mut p = workload
            .build_tg_platform(images.clone(), fabric, false)
            .expect("build");
        let tg = run_checked(&mut p, "tg").execution_time().expect("halted");
        // Calibrated stochastic sources.
        let mut b = PlatformBuilder::new();
        b.interconnect(fabric);
        for cfg in &per_core_cfg {
            b.add_stochastic(cfg.clone());
        }
        workload.preload(&mut b, cores);
        let mut p = b.build().expect("build");
        let stoch = run_checked(&mut p, "stochastic")
            .execution_time()
            .expect("halted");

        let err = |v: u64| (v as f64 - truth as f64).abs() / truth as f64 * 100.0;
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>11.2}% {:>11.2}%",
            fabric.to_string(),
            truth,
            tg,
            stoch,
            err(tg),
            err(stoch)
        );
        truth_order.push((fabric, truth));
        tg_order.push((fabric, tg));
        stoch_order.push((fabric, stoch));
    }

    let rank = |mut v: Vec<(InterconnectChoice, u64)>| -> Vec<String> {
        v.sort_by_key(|&(_, c)| c);
        v.into_iter().map(|(f, _)| f.to_string()).collect()
    };
    let truth_rank = rank(truth_order);
    let tg_rank = rank(tg_order);
    let stoch_rank = rank(stoch_order);
    println!("\nfabric ranking (fastest first):");
    println!("  ground truth : {truth_rank:?}");
    println!(
        "  TG replay    : {tg_rank:?}  {}",
        if tg_rank == truth_rank { "(matches)" } else { "(MISRANKED)" }
    );
    println!(
        "  stochastic   : {stoch_rank:?}  {}",
        if stoch_rank == truth_rank { "(matches)" } else { "(MISRANKED)" }
    );
    println!(
        "\nThe stochastic model carries the right aggregate load but no \
         program structure and no reactivity ({} reads of semaphores in the \
         real trace adapt to each fabric) — the paper's §2 argument, \
         quantified.",
        traces
            .iter()
            .map(|t| {
                t.transactions()
                    .unwrap()
                    .iter()
                    .filter(|tx| tx.cmd == OcpCmd::Read
                        && tx.addr >= 0x1B00_0000)
                    .count()
            })
            .sum::<usize>()
    );
}
