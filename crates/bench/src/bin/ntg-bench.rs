//! Hot-path performance-trajectory harness.
//!
//! Replays a fixed subset of the Table 2 points — the ARM reference and
//! the TG replay, with event-horizon skipping both on and off — under
//! warmup/repeat/min timing (the minimum over repeats is the
//! least-interference estimate, which keeps the trajectory readable on
//! noisy shared hosts), and writes the measurements to a
//! machine-readable JSON file (`BENCH_hotpath.json` by default). Checking
//! that file in per commit gives the repo a performance trajectory:
//! regressions show up as a diff, not as an anecdote.
//!
//! The skip-off leg exists for two reasons: it measures raw ticked-cycle
//! throughput (every simulated cycle is actually executed, so
//! `ticked_per_sec` is the honest "how fast is one tick" number), and it
//! cross-checks bit-identity — the run must report exactly the same
//! cycles and transaction counts as the skip-on leg, which `ci.sh`
//! enforces on the emitted JSON.
//!
//! Since the v2 schema the report also carries an in-process campaign
//! parallelism leg: the same points run as a warm-store campaign with
//! one worker and with `threads` workers (Send platforms sharing one
//! in-memory artifact cache and one open store handle), so the
//! parallel-campaign wall-clock win is part of the recorded trajectory.
//! Passing `--baseline PATH` folds a previous report's wall times into
//! each point (`baseline` / `speedup_vs_baseline`), which is how the
//! arena-vs-Rc before/after comparison is recorded.
//!
//! The v3 schema adds a big-mesh partitioning leg: synthetic uniform
//! traffic on 8×8 and 16×16 xpipes meshes, advanced serially and as
//! four row-band partitions in cycle lockstep
//! (`Platform::run_with_threads`). Cycle and transaction counts are
//! asserted identical across the two legs; the JSON records the
//! partition count, barrier crossings/stalls and the measured parallel
//! speedup, plus `host_cpus` so a single-CPU host's inevitably flat
//! speedup reads as a host property rather than a regression.
//!
//! The v4 schema adds the O(active) scheduling trajectory: every leg
//! reports `visited_component_cycles` / `total_component_cycles` (the
//! component-tick work actually done vs the dense `components × cycles`
//! bound), and each big-mesh point gains an `active_sched` block — the
//! same serial platform re-run with the sparse scheduler disabled
//! (`Platform::set_active_scheduling(false)`), asserted bit-identical,
//! with the sparse-vs-dense wall ratio and visit ratio recorded. The
//! mesh points also record `oversubscribed` (the partition barrier
//! dropped to immediate-yield because sim threads exceeded host CPUs),
//! so flat partitioned speedups on small hosts are self-explaining.
//!
//! Usage:
//!   `cargo run --release -p ntg-bench --bin ntg-bench -- [--smoke]
//!    [--warmup N] [--repeats N] [--out PATH] [--baseline PATH]`
//!
//! Build with `--features alloc-count` to include allocation counts in
//! the report (slightly perturbs timings; keep trajectory comparisons
//! within one build configuration).

use std::time::Duration;

use ntg_bench::{alloc_count, peak_rss_kb, run_checked, time, trace_and_translate, MAX_CYCLES};
use ntg_core::TgImage;
use ntg_explore::{run_campaign, CampaignSpec, CoreSelection, Json, RunOptions};
use ntg_platform::{InterconnectChoice, PartitionReport, Platform, RunReport};
use ntg_workloads::synthetic::{build_synthetic_platform, SyntheticSpec};
use ntg_workloads::Workload;

/// One benchmark point: a workload at a core count, on AMBA (the paper's
/// contended shared bus — MP matrix and DES at four cores are the
/// saturation points where hot-path cost dominates).
struct Point {
    workload: Workload,
    cores: usize,
}

fn full_points() -> Vec<Point> {
    vec![
        Point {
            workload: Workload::Cacheloop { iterations: 60_000 },
            cores: 2,
        },
        Point {
            workload: Workload::MpMatrix { n: 24 },
            cores: 4,
        },
        Point {
            workload: Workload::Des {
                blocks_per_core: 24,
            },
            cores: 4,
        },
    ]
}

fn smoke_points() -> Vec<Point> {
    vec![
        Point {
            workload: Workload::Cacheloop { iterations: 5_000 },
            cores: 2,
        },
        Point {
            workload: Workload::MpMatrix { n: 12 },
            cores: 2,
        },
        Point {
            workload: Workload::Des { blocks_per_core: 4 },
            cores: 2,
        },
    ]
}

/// One big-mesh partitioning point: a synthetic-traffic mesh large
/// enough that intra-run parallelism is worth measuring. Masters are
/// capped by the canonical layout's capacity rule (`2·masters + 3`
/// sockets must fit on the mesh).
struct MeshPoint {
    width: u16,
    height: u16,
    masters: usize,
    packets: u64,
}

/// How many partitions the big-mesh leg asks for. Matches the
/// equivalence suite's thread count; on a 16-row mesh this yields four
/// row bands.
const MESH_SIM_THREADS: usize = 4;

fn full_mesh_points() -> Vec<MeshPoint> {
    vec![
        MeshPoint {
            width: 8,
            height: 8,
            masters: 24,
            packets: 1024,
        },
        MeshPoint {
            width: 16,
            height: 16,
            masters: 96,
            packets: 512,
        },
    ]
}

fn smoke_mesh_points() -> Vec<MeshPoint> {
    vec![
        MeshPoint {
            width: 4,
            height: 4,
            masters: 6,
            packets: 64,
        },
        MeshPoint {
            width: 8,
            height: 8,
            masters: 24,
            packets: 32,
        },
    ]
}

/// Median-of-repeats measurements for one platform configuration.
struct Leg {
    cycles: u64,
    ticked_cycles: u64,
    skipped_cycles: u64,
    visited_component_cycles: u64,
    total_component_cycles: u64,
    transactions: u64,
    wall: Duration,
}

impl Leg {
    fn ticked_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.ticked_cycles as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    fn visit_ratio(&self) -> f64 {
        if self.total_component_cycles > 0 {
            self.visited_component_cycles as f64 / self.total_component_cycles as f64
        } else {
            1.0
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cycles".into(), Json::Int(self.cycles as i64)),
            ("ticked_cycles".into(), Json::Int(self.ticked_cycles as i64)),
            (
                "skipped_cycles".into(),
                Json::Int(self.skipped_cycles as i64),
            ),
            (
                "visited_component_cycles".into(),
                Json::Int(self.visited_component_cycles as i64),
            ),
            (
                "total_component_cycles".into(),
                Json::Int(self.total_component_cycles as i64),
            ),
            ("transactions".into(), Json::Int(self.transactions as i64)),
            ("wall_s".into(), Json::Float(self.wall.as_secs_f64())),
            ("ticked_per_sec".into(), Json::Float(self.ticked_per_sec())),
        ])
    }
}

fn leg_from(report: &RunReport, wall: Duration) -> Leg {
    Leg {
        cycles: report.cycles,
        ticked_cycles: report.ticked_cycles,
        skipped_cycles: report.skipped_cycles,
        visited_component_cycles: report.visited_component_cycles,
        total_component_cycles: report.total_component_cycles,
        transactions: report.transactions,
        wall,
    }
}

/// Runs `build()` `warmup + repeats` times and reports the minimum wall
/// time over the timed repeats (run-to-run noise only ever adds time,
/// so the minimum is the stable estimator), with the last run's cycle
/// accounting (cycle counts are deterministic, so any run's counts are
/// *the* counts — asserted below).
fn measure(what: &str, warmup: usize, repeats: usize, mut build: impl FnMut() -> Platform) -> Leg {
    let mut last: Option<RunReport> = None;
    let mut walls = Vec::with_capacity(repeats);
    for i in 0..warmup + repeats {
        let mut p = build();
        let (report, wall) = time(|| run_checked(&mut p, what));
        if i >= warmup {
            walls.push(wall);
        }
        if let Some(prev) = &last {
            assert_eq!(prev.cycles, report.cycles, "{what}: non-deterministic run");
        }
        last = Some(report);
    }
    let report = last.expect("at least one repeat");
    leg_from(
        &report,
        walls.iter().copied().min().expect("at least one repeat"),
    )
}

/// Like [`measure`], but drives the platform through
/// [`Platform::run_with_threads`] and keeps the last run's partition
/// diagnostics (`None` for the serial fallback at one thread).
fn measure_mesh(
    what: &str,
    warmup: usize,
    repeats: usize,
    sim_threads: usize,
    mut build: impl FnMut() -> Platform,
) -> (Leg, Option<PartitionReport>) {
    let mut last: Option<RunReport> = None;
    let mut walls = Vec::with_capacity(repeats);
    for i in 0..warmup + repeats {
        let mut p = build();
        let (report, wall) = time(|| p.run_with_threads(MAX_CYCLES, sim_threads));
        assert!(report.completed, "{what}: hit the {MAX_CYCLES}-cycle bound");
        assert!(
            report.faults.is_empty(),
            "{what}: faults {:?}",
            report.faults
        );
        if i >= warmup {
            walls.push(wall);
        }
        if let Some(prev) = &last {
            assert_eq!(prev.cycles, report.cycles, "{what}: non-deterministic run");
        }
        last = Some(report);
    }
    let report = last.expect("at least one repeat");
    let leg = leg_from(
        &report,
        walls.iter().copied().min().expect("at least one repeat"),
    );
    (leg, report.partition)
}

/// Pulls the matching big-mesh point's per-leg wall times out of a
/// previous report. Absent in v1/v2 baselines — callers must tolerate
/// `None`.
fn baseline_mesh_walls(doc: &Json, mesh: &str, masters: usize) -> Option<[f64; 2]> {
    let Json::Arr(points) = doc.get("big_mesh")? else {
        return None;
    };
    let point = points.iter().find(|p| {
        p.get("mesh").and_then(Json::as_str) == Some(mesh)
            && p.get("masters").and_then(Json::as_u64) == Some(masters as u64)
    })?;
    let wall = |leg: &str| point.get(leg)?.get("wall_s")?.as_f64();
    Some([wall("serial")?, wall("partitioned")?])
}

/// Pulls the matching point's per-leg wall times out of a previous
/// report (v1 or v2 — the leg layout is unchanged).
fn baseline_walls(doc: &Json, bench: &str, cores: usize) -> Option<[f64; 3]> {
    let Json::Arr(points) = doc.get("points")? else {
        return None;
    };
    let point = points.iter().find(|p| {
        p.get("bench").and_then(Json::as_str) == Some(bench)
            && p.get("cores").and_then(Json::as_u64) == Some(cores as u64)
    })?;
    let wall = |leg: &str| point.get(leg)?.get("wall_s")?.as_f64();
    Some([wall("arm")?, wall("tg_skip")?, wall("tg_noskip")?])
}

/// Runs the bench points as a warm-store campaign with 1 worker and
/// with `threads` in-process workers; returns `(jobs, wall_1t, wall_nt)`.
fn campaign_leg(points: &[Point], smoke: bool, threads: usize) -> (usize, f64, f64) {
    let mut spec = CampaignSpec::new(if smoke {
        "bench-campaign-smoke"
    } else {
        "bench-campaign"
    });
    spec.workloads = points.iter().map(|p| p.workload).collect();
    spec.cores = CoreSelection::List(if smoke { vec![2] } else { vec![2, 4] });
    let store = std::env::temp_dir().join(format!("ntg-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let run = |threads: usize| {
        run_campaign(
            &spec,
            &RunOptions {
                threads,
                store: Some(store.clone()),
                ..RunOptions::default()
            },
        )
        .expect("campaign leg")
    };
    // Warm the persistent store so both measured legs replay the same
    // cached artifacts instead of racing to build them.
    let warm = run(threads);
    assert!(
        warm.results.iter().all(|r| r.error.is_none()),
        "campaign leg failed: {:?}",
        warm.results.iter().find_map(|r| r.error.clone())
    );
    let single = run(1);
    let parallel = run(threads);
    let _ = std::fs::remove_dir_all(&store);
    (warm.results.len(), single.wall_secs, parallel.wall_secs)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    let warmup = flag("--warmup").unwrap_or(if smoke { 0 } else { 1 });
    let repeats = flag("--repeats")
        .unwrap_or(if smoke { 1 } else { 3 })
        .max(1);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
            Json::parse(&text).unwrap_or_else(|e| panic!("parse baseline {path}: {e}"))
        });

    let points = if smoke { smoke_points() } else { full_points() };
    let ic = InterconnectChoice::Amba;

    println!(
        "ntg-bench: {} mode, warmup {warmup}, repeats {repeats}, alloc-count {}",
        if smoke { "smoke" } else { "full" },
        if alloc_count::enabled() { "on" } else { "off" },
    );

    let mut point_jsons = Vec::new();
    for pt in &points {
        let name = pt.workload.name();
        let cores = pt.cores;
        println!("-- {name} {cores}P on {ic}");

        let arm = measure(&format!("{name} {cores}P ARM"), warmup, repeats, || {
            pt.workload
                .build_platform(cores, ic, false)
                .expect("build reference platform")
        });

        let images: Vec<TgImage> = trace_and_translate(pt.workload, cores, ic);
        let build_tg = |skip: bool| {
            let images = images.clone();
            let workload = pt.workload;
            move || {
                let mut p = workload
                    .build_tg_platform(images.clone(), ic, false)
                    .expect("build TG platform");
                p.set_cycle_skipping(skip);
                p
            }
        };
        let tg_skip = measure(
            &format!("{name} {cores}P TG skip-on"),
            warmup,
            repeats,
            build_tg(true),
        );
        let tg_noskip = measure(
            &format!("{name} {cores}P TG skip-off"),
            warmup,
            repeats,
            build_tg(false),
        );

        // Bit-identity across the skip toggle is the contract cycle
        // skipping is sold on; fail loudly, not just in the JSON diff.
        assert_eq!(
            tg_skip.cycles, tg_noskip.cycles,
            "{name} {cores}P: skip-on/off cycle mismatch"
        );
        assert_eq!(
            tg_skip.transactions, tg_noskip.transactions,
            "{name} {cores}P: skip-on/off transaction mismatch"
        );
        assert_eq!(tg_noskip.skipped_cycles, 0, "skip-off leg must tick all");

        println!(
            "   ARM {:>10.3}s | TG skip {:>8.3}s ({:.2}Mt/s) | TG tick {:>8.3}s ({:.2}Mt/s)",
            arm.wall.as_secs_f64(),
            tg_skip.wall.as_secs_f64(),
            tg_skip.ticked_per_sec() / 1e6,
            tg_noskip.wall.as_secs_f64(),
            tg_noskip.ticked_per_sec() / 1e6,
        );

        let mut fields = vec![
            ("bench".into(), Json::Str(name.to_string())),
            ("cores".into(), Json::Int(cores as i64)),
            ("interconnect".into(), Json::Str(ic.to_string())),
            ("arm".into(), arm.to_json()),
            ("tg_skip".into(), tg_skip.to_json()),
            ("tg_noskip".into(), tg_noskip.to_json()),
        ];
        if let Some([b_arm, b_skip, b_noskip]) = baseline
            .as_ref()
            .and_then(|doc| baseline_walls(doc, name, cores))
        {
            let ratio =
                |base: f64, new: &Leg| (base / new.wall.as_secs_f64() * 1000.0).round() / 1000.0;
            fields.push((
                "baseline".into(),
                Json::Obj(vec![
                    ("arm_wall_s".into(), Json::Float(b_arm)),
                    ("tg_skip_wall_s".into(), Json::Float(b_skip)),
                    ("tg_noskip_wall_s".into(), Json::Float(b_noskip)),
                ]),
            ));
            fields.push((
                "speedup_vs_baseline".into(),
                Json::Obj(vec![
                    ("arm".into(), Json::Float(ratio(b_arm, &arm))),
                    ("tg_skip".into(), Json::Float(ratio(b_skip, &tg_skip))),
                    ("tg_noskip".into(), Json::Float(ratio(b_noskip, &tg_noskip))),
                ]),
            ));
            println!(
                "   vs baseline: ARM {:.2}x | TG skip {:.2}x | TG tick {:.2}x",
                b_arm / arm.wall.as_secs_f64(),
                b_skip / tg_skip.wall.as_secs_f64(),
                b_noskip / tg_noskip.wall.as_secs_f64(),
            );
        }
        point_jsons.push(Json::Obj(fields));
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);

    // Big-mesh partitioning leg: the same synthetic platform advanced by
    // the serial loop and by MESH_SIM_THREADS row-band partitions in
    // cycle lockstep. Results are asserted bit-identical; the speedup
    // column is only meaningful when the host actually has cores — on a
    // single-CPU host the partitioned wall records barrier overhead, and
    // that honesty is part of the trajectory.
    let mesh_points = if smoke {
        smoke_mesh_points()
    } else {
        full_mesh_points()
    };
    let spec: SyntheticSpec = "uniform+bernoulli@0.1/4".parse().expect("descriptor");
    let mut mesh_jsons = Vec::new();
    for mp in &mesh_points {
        let mesh = format!("{}x{}", mp.width, mp.height);
        let masters = mp.masters;
        assert!(
            usize::from(mp.width) * usize::from(mp.height) >= 2 * masters + 3,
            "{mesh}: {masters} masters do not fit"
        );
        println!(
            "-- big mesh {mesh}, {masters} masters, {} packets each",
            mp.packets
        );
        let build = || {
            build_synthetic_platform(
                masters,
                InterconnectChoice::Mesh(mp.width, mp.height),
                spec,
                mp.packets,
                0xB16_4E54,
            )
            .expect("build big-mesh platform")
        };
        let (serial, none) = measure_mesh(&format!("{mesh} serial"), warmup, repeats, 1, build);
        assert!(none.is_none(), "{mesh}: 1-thread run must stay serial");
        let (part, diag) = measure_mesh(
            &format!("{mesh} {MESH_SIM_THREADS}T"),
            warmup,
            repeats,
            MESH_SIM_THREADS,
            build,
        );
        let diag = diag.expect("partitioned run must report diagnostics");
        assert!(
            diag.partitions >= 2,
            "{mesh}: got {} bands",
            diag.partitions
        );
        assert_eq!(serial.cycles, part.cycles, "{mesh}: cycle mismatch");
        assert_eq!(
            serial.transactions, part.transactions,
            "{mesh}: transaction mismatch"
        );
        // O(active) scheduling leg: the serial run above used the sparse
        // scheduler (the default); re-run with it disabled so the
        // trajectory records the horizon-scan wall side by side. Both
        // runs must agree bit-exactly, and the sparse run must actually
        // visit fewer component-cycles than the dense bound.
        let build_dense = || {
            let mut p = build();
            p.set_active_scheduling(false);
            p
        };
        let (dense, dense_diag) = measure_mesh(
            &format!("{mesh} serial dense"),
            warmup,
            repeats,
            1,
            build_dense,
        );
        assert!(
            dense_diag.is_none(),
            "{mesh}: 1-thread run must stay serial"
        );
        assert_eq!(
            serial.cycles, dense.cycles,
            "{mesh}: sparse/dense cycle mismatch"
        );
        assert_eq!(
            serial.transactions, dense.transactions,
            "{mesh}: sparse/dense transaction mismatch"
        );
        assert!(
            serial.visited_component_cycles < serial.total_component_cycles,
            "{mesh}: sparse scheduler visited every component-cycle ({} of {})",
            serial.visited_component_cycles,
            serial.total_component_cycles,
        );
        assert_eq!(
            serial.visited_component_cycles, part.visited_component_cycles,
            "{mesh}: sparse serial/partitioned visit mismatch"
        );
        let sched_speedup = dense.wall.as_secs_f64() / serial.wall.as_secs_f64();
        println!(
            "   active-sched: visited {}/{} comp-cycles ({:.4}), dense {:>8.3}s -> sparse {:>8.3}s ({sched_speedup:.2}x)",
            serial.visited_component_cycles,
            serial.total_component_cycles,
            serial.visit_ratio(),
            dense.wall.as_secs_f64(),
            serial.wall.as_secs_f64(),
        );
        let speedup = serial.wall.as_secs_f64() / part.wall.as_secs_f64();
        println!(
            "   serial {:>8.3}s | {} bands {:>8.3}s ({speedup:.2}x, {} crossings, {} stalls)",
            serial.wall.as_secs_f64(),
            diag.partitions,
            part.wall.as_secs_f64(),
            diag.barrier_crossings,
            diag.barrier_stalls,
        );
        let mut fields = vec![
            ("mesh".into(), Json::Str(mesh.clone())),
            ("masters".into(), Json::Int(masters as i64)),
            ("packets".into(), Json::Int(mp.packets as i64)),
            ("spec".into(), Json::Str(spec.to_string())),
            ("sim_threads".into(), Json::Int(MESH_SIM_THREADS as i64)),
            ("serial".into(), serial.to_json()),
            ("partitioned".into(), part.to_json()),
            ("partitions".into(), Json::Int(diag.partitions as i64)),
            (
                "barrier_crossings".into(),
                Json::Int(diag.barrier_crossings as i64),
            ),
            (
                "barrier_stalls".into(),
                Json::Int(diag.barrier_stalls as i64),
            ),
            (
                "parallel_speedup".into(),
                Json::Float((speedup * 1000.0).round() / 1000.0),
            ),
            (
                "active_sched".into(),
                Json::Obj(vec![
                    ("dense".into(), dense.to_json()),
                    (
                        "visited_component_cycles".into(),
                        Json::Int(serial.visited_component_cycles as i64),
                    ),
                    (
                        "total_component_cycles".into(),
                        Json::Int(serial.total_component_cycles as i64),
                    ),
                    (
                        "visit_ratio".into(),
                        Json::Float((serial.visit_ratio() * 10_000.0).round() / 10_000.0),
                    ),
                    (
                        "speedup_vs_dense".into(),
                        Json::Float((sched_speedup * 1000.0).round() / 1000.0),
                    ),
                ]),
            ),
            ("oversubscribed".into(), Json::Bool(diag.oversubscribed)),
        ];
        if let Some([b_serial, b_part]) = baseline
            .as_ref()
            .and_then(|doc| baseline_mesh_walls(doc, &mesh, masters))
        {
            let ratio =
                |base: f64, new: &Leg| (base / new.wall.as_secs_f64() * 1000.0).round() / 1000.0;
            fields.push((
                "baseline".into(),
                Json::Obj(vec![
                    ("serial_wall_s".into(), Json::Float(b_serial)),
                    ("partitioned_wall_s".into(), Json::Float(b_part)),
                ]),
            ));
            fields.push((
                "speedup_vs_baseline".into(),
                Json::Obj(vec![
                    ("serial".into(), Json::Float(ratio(b_serial, &serial))),
                    ("partitioned".into(), Json::Float(ratio(b_part, &part))),
                ]),
            ));
        }
        mesh_jsons.push(Json::Obj(fields));
    }

    // At least two workers even on a single-core host: the point of the
    // leg is exercising concurrent workers against one shared cache and
    // store handle; the speedup column is only meaningful with cores.
    let threads = host_cpus.clamp(2, 8);
    println!("-- campaign leg: {threads} in-process workers, warm shared store");
    let (jobs, wall_1t, wall_nt) = campaign_leg(&points, smoke, threads);
    println!(
        "   {jobs} jobs | 1 worker {wall_1t:.3}s | {threads} workers {wall_nt:.3}s ({:.2}x)",
        wall_1t / wall_nt
    );

    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("ntg-bench-hotpath-v4".into())),
        (
            "mode".into(),
            Json::Str(if smoke { "smoke" } else { "full" }.into()),
        ),
        ("warmup".into(), Json::Int(warmup as i64)),
        ("repeats".into(), Json::Int(repeats as i64)),
        ("threads".into(), Json::Int(threads as i64)),
        ("host_cpus".into(), Json::Int(host_cpus as i64)),
        (
            "campaign".into(),
            Json::Obj(vec![
                ("jobs".into(), Json::Int(jobs as i64)),
                ("wall_s_threads_1".into(), Json::Float(wall_1t)),
                ("wall_s_threads_n".into(), Json::Float(wall_nt)),
                (
                    "parallel_speedup".into(),
                    Json::Float((wall_1t / wall_nt * 1000.0).round() / 1000.0),
                ),
            ]),
        ),
        (
            "peak_rss_kb".into(),
            peak_rss_kb().map_or(Json::Null, |kb| Json::Int(kb as i64)),
        ),
        (
            "alloc".into(),
            Json::Obj(vec![
                ("enabled".into(), Json::Bool(alloc_count::enabled())),
                (
                    "allocations".into(),
                    Json::Int(alloc_count::allocations() as i64),
                ),
                ("bytes".into(), Json::Int(alloc_count::bytes() as i64)),
            ]),
        ),
        ("points".into(), Json::Arr(point_jsons)),
        ("big_mesh".into(), Json::Arr(mesh_jsons)),
    ]);

    let mut text = report.render();
    text.push('\n');
    std::fs::write(&out_path, text).expect("write report");
    println!("wrote {out_path}");
}
