//! Hot-path performance-trajectory harness.
//!
//! Replays a fixed subset of the Table 2 points — the ARM reference and
//! the TG replay, with event-horizon skipping both on and off — under
//! warmup/repeat/median timing, and writes the measurements to a
//! machine-readable JSON file (`BENCH_hotpath.json` by default). Checking
//! that file in per commit gives the repo a performance trajectory:
//! regressions show up as a diff, not as an anecdote.
//!
//! The skip-off leg exists for two reasons: it measures raw ticked-cycle
//! throughput (every simulated cycle is actually executed, so
//! `ticked_per_sec` is the honest "how fast is one tick" number), and it
//! cross-checks bit-identity — the run must report exactly the same
//! cycles and transaction counts as the skip-on leg, which `ci.sh`
//! enforces on the emitted JSON.
//!
//! Usage:
//!   `cargo run --release -p ntg-bench --bin ntg-bench -- [--smoke]
//!    [--warmup N] [--repeats N] [--out PATH]`
//!
//! Build with `--features alloc-count` to include allocation counts in
//! the report (slightly perturbs timings; keep trajectory comparisons
//! within one build configuration).

use std::time::Duration;

use ntg_bench::{alloc_count, median, peak_rss_kb, run_checked, time, trace_and_translate};
use ntg_core::TgImage;
use ntg_explore::Json;
use ntg_platform::{InterconnectChoice, Platform, RunReport};
use ntg_workloads::Workload;

/// One benchmark point: a workload at a core count, on AMBA (the paper's
/// contended shared bus — MP matrix and DES at four cores are the
/// saturation points where hot-path cost dominates).
struct Point {
    workload: Workload,
    cores: usize,
}

fn full_points() -> Vec<Point> {
    vec![
        Point {
            workload: Workload::Cacheloop { iterations: 60_000 },
            cores: 2,
        },
        Point {
            workload: Workload::MpMatrix { n: 24 },
            cores: 4,
        },
        Point {
            workload: Workload::Des {
                blocks_per_core: 24,
            },
            cores: 4,
        },
    ]
}

fn smoke_points() -> Vec<Point> {
    vec![
        Point {
            workload: Workload::Cacheloop { iterations: 5_000 },
            cores: 2,
        },
        Point {
            workload: Workload::MpMatrix { n: 12 },
            cores: 2,
        },
        Point {
            workload: Workload::Des { blocks_per_core: 4 },
            cores: 2,
        },
    ]
}

/// Median-of-repeats measurements for one platform configuration.
struct Leg {
    cycles: u64,
    ticked_cycles: u64,
    skipped_cycles: u64,
    transactions: u64,
    wall: Duration,
}

impl Leg {
    fn ticked_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.ticked_cycles as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cycles".into(), Json::Int(self.cycles as i64)),
            ("ticked_cycles".into(), Json::Int(self.ticked_cycles as i64)),
            (
                "skipped_cycles".into(),
                Json::Int(self.skipped_cycles as i64),
            ),
            ("transactions".into(), Json::Int(self.transactions as i64)),
            ("wall_s".into(), Json::Float(self.wall.as_secs_f64())),
            ("ticked_per_sec".into(), Json::Float(self.ticked_per_sec())),
        ])
    }
}

/// Runs `build()` `warmup + repeats` times and reports the median wall
/// time over the timed repeats, with the last run's cycle accounting
/// (cycle counts are deterministic, so any run's counts are *the*
/// counts — asserted below).
fn measure(what: &str, warmup: usize, repeats: usize, mut build: impl FnMut() -> Platform) -> Leg {
    let mut last: Option<RunReport> = None;
    let mut walls = Vec::with_capacity(repeats);
    for i in 0..warmup + repeats {
        let mut p = build();
        let (report, wall) = time(|| run_checked(&mut p, what));
        if i >= warmup {
            walls.push(wall);
        }
        if let Some(prev) = &last {
            assert_eq!(prev.cycles, report.cycles, "{what}: non-deterministic run");
        }
        last = Some(report);
    }
    let report = last.expect("at least one repeat");
    Leg {
        cycles: report.cycles,
        ticked_cycles: report.ticked_cycles,
        skipped_cycles: report.skipped_cycles,
        transactions: report.transactions,
        wall: median(&mut walls),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    let warmup = flag("--warmup").unwrap_or(if smoke { 0 } else { 1 });
    let repeats = flag("--repeats")
        .unwrap_or(if smoke { 1 } else { 3 })
        .max(1);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());

    let points = if smoke { smoke_points() } else { full_points() };
    let ic = InterconnectChoice::Amba;

    println!(
        "ntg-bench: {} mode, warmup {warmup}, repeats {repeats}, alloc-count {}",
        if smoke { "smoke" } else { "full" },
        if alloc_count::enabled() { "on" } else { "off" },
    );

    let mut point_jsons = Vec::new();
    for pt in &points {
        let name = pt.workload.name();
        let cores = pt.cores;
        println!("-- {name} {cores}P on {ic}");

        let arm = measure(&format!("{name} {cores}P ARM"), warmup, repeats, || {
            pt.workload
                .build_platform(cores, ic, false)
                .expect("build reference platform")
        });

        let images: Vec<TgImage> = trace_and_translate(pt.workload, cores, ic);
        let build_tg = |skip: bool| {
            let images = images.clone();
            let workload = pt.workload;
            move || {
                let mut p = workload
                    .build_tg_platform(images.clone(), ic, false)
                    .expect("build TG platform");
                p.set_cycle_skipping(skip);
                p
            }
        };
        let tg_skip = measure(
            &format!("{name} {cores}P TG skip-on"),
            warmup,
            repeats,
            build_tg(true),
        );
        let tg_noskip = measure(
            &format!("{name} {cores}P TG skip-off"),
            warmup,
            repeats,
            build_tg(false),
        );

        // Bit-identity across the skip toggle is the contract cycle
        // skipping is sold on; fail loudly, not just in the JSON diff.
        assert_eq!(
            tg_skip.cycles, tg_noskip.cycles,
            "{name} {cores}P: skip-on/off cycle mismatch"
        );
        assert_eq!(
            tg_skip.transactions, tg_noskip.transactions,
            "{name} {cores}P: skip-on/off transaction mismatch"
        );
        assert_eq!(tg_noskip.skipped_cycles, 0, "skip-off leg must tick all");

        println!(
            "   ARM {:>10.3}s | TG skip {:>8.3}s ({:.2}Mt/s) | TG tick {:>8.3}s ({:.2}Mt/s)",
            arm.wall.as_secs_f64(),
            tg_skip.wall.as_secs_f64(),
            tg_skip.ticked_per_sec() / 1e6,
            tg_noskip.wall.as_secs_f64(),
            tg_noskip.ticked_per_sec() / 1e6,
        );

        point_jsons.push(Json::Obj(vec![
            ("bench".into(), Json::Str(name.to_string())),
            ("cores".into(), Json::Int(cores as i64)),
            ("interconnect".into(), Json::Str(ic.to_string())),
            ("arm".into(), arm.to_json()),
            ("tg_skip".into(), tg_skip.to_json()),
            ("tg_noskip".into(), tg_noskip.to_json()),
        ]));
    }

    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("ntg-bench-hotpath-v1".into())),
        (
            "mode".into(),
            Json::Str(if smoke { "smoke" } else { "full" }.into()),
        ),
        ("warmup".into(), Json::Int(warmup as i64)),
        ("repeats".into(), Json::Int(repeats as i64)),
        (
            "peak_rss_kb".into(),
            peak_rss_kb().map_or(Json::Null, |kb| Json::Int(kb as i64)),
        ),
        (
            "alloc".into(),
            Json::Obj(vec![
                ("enabled".into(), Json::Bool(alloc_count::enabled())),
                (
                    "allocations".into(),
                    Json::Int(alloc_count::allocations() as i64),
                ),
                ("bytes".into(), Json::Int(alloc_count::bytes() as i64)),
            ]),
        ),
        ("points".into(), Json::Arr(point_jsons)),
    ]);

    let mut text = report.render();
    text.push('\n');
    std::fs::write(&out_path, text).expect("write report");
    println!("wrote {out_path}");
}
