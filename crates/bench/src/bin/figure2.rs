//! Reproduces the paper's **Figure 2**: the two canonical MPARM
//! transaction patterns, exported as Chrome `trace_event` timelines
//! from real simulated traces.
//!
//! * (a) a master talking to its exclusively owned slave: posted write
//!   (WR), blocking read (RD), and a read stalled behind a write at the
//!   slave;
//! * (b) two masters racing for one hardware semaphore: M1 locks it, M2
//!   polls and fails until M1's unlocking write, then succeeds.
//!
//! Usage: `cargo run -p ntg-bench --bin figure2 [-- OUT_DIR]`
//!
//! Writes `figure2a.trace.json` and `figure2b.trace.json` (to `OUT_DIR`,
//! default the current directory); open them in `chrome://tracing` or
//! <https://ui.perfetto.dev> to see the Figure 2 timelines interactively.

use std::path::{Path, PathBuf};

use ntg_cpu::isa::{R1, R2, R3, R4};
use ntg_cpu::Asm;
use ntg_platform::{mem_map, InterconnectChoice, PlatformBuilder};
use ntg_trace::{chrome_trace_json, MasterTrace};

fn export(out_dir: &Path, name: &str, title: &str, traces: &[MasterTrace]) {
    let json = chrome_trace_json(traces).expect("well-formed traces");
    let path = out_dir.join(name);
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    let events: usize = traces
        .iter()
        .map(|t| t.transactions().expect("well-formed trace").len())
        .sum();
    println!(
        "{title}\n  -> {} ({} masters, {events} transactions)",
        path.display(),
        traces.len()
    );
}

/// Figure 2(a): WR, RD, then a RD immediately after a WR (stalled at the
/// slave).
fn private_slave_pattern(out_dir: &Path) {
    let mut a = Asm::new();
    let base = mem_map::SHARED_BASE; // uncached, so every access is visible
    a.li(R2, base);
    a.li(R1, 0x111);
    a.stw(R1, R2, 0); // WR
    a.ldw(R3, R2, 0); // RD (blocking)
                      // Compute gap.
    a.li(R4, 20);
    a.label("gap");
    a.addi(R4, R4, -1);
    a.bne(R4, ntg_cpu::isa::R0, "gap");
    a.stw(R1, R2, 4); // WR …
    a.ldw(R3, R2, 8); // … RD right behind it: stalls at the slave
    a.halt();
    let program = a.assemble(mem_map::private_base(0)).unwrap();

    let mut b = PlatformBuilder::new();
    b.interconnect(InterconnectChoice::Amba).tracing(true);
    b.add_cpu(program);
    let mut p = b.build().unwrap();
    assert!(p.run(100_000).completed);
    export(
        out_dir,
        "figure2a.trace.json",
        "Figure 2(a): master <-> private slave (WR posted, RD blocking)",
        &[p.trace(0).unwrap()],
    );
}

/// Figure 2(b): M1 and M2 race for a hardware semaphore; M2 polls.
fn semaphore_contention_pattern(out_dir: &Path) {
    let sem = mem_map::semaphore(0);
    let make = |core: usize, hold_cycles: u32, start_delay: u32| {
        let mut a = Asm::new();
        // Stagger the cores so M1 wins the semaphore.
        a.li(R4, start_delay.max(1));
        a.label("delay");
        a.addi(R4, R4, -1);
        a.bne(R4, ntg_cpu::isa::R0, "delay");
        a.li(R2, sem);
        a.li(R1, 1);
        a.label("acq");
        a.ldw(R3, R2, 0); // TAS read: 1 = acquired
        a.bne(R3, R1, "acq");
        // Hold the lock for a while (M1 only holds long).
        a.li(R4, hold_cycles.max(1));
        a.label("hold");
        a.addi(R4, R4, -1);
        a.bne(R4, ntg_cpu::isa::R0, "hold");
        a.stw(R1, R2, 0); // unlock (WR 1)
        a.halt();
        a.assemble(mem_map::private_base(core)).unwrap()
    };

    let mut b = PlatformBuilder::new();
    b.interconnect(InterconnectChoice::Amba).tracing(true);
    b.add_cpu(make(0, 120, 1)); // M1: arrives first, holds long
    b.add_cpu(make(1, 4, 30)); // M2: arrives second, polls
    let mut p = b.build().unwrap();
    assert!(p.run(100_000).completed);
    let traces = [p.trace(0).unwrap(), p.trace(1).unwrap()];
    let polls = traces[1]
        .transactions()
        .unwrap()
        .iter()
        .filter(|t| t.addr == sem && t.cmd == ntg_ocp::OcpCmd::Read)
        .count();
    export(
        out_dir,
        "figure2b.trace.json",
        "Figure 2(b): M1 locks the semaphore, M2 polls until M1 unlocks",
        &traces,
    );
    println!(
        "  M2 issued {polls} semaphore reads; all but the last returned 0 \
         (locked), the last returned 1 — the reactive pattern the TG's \
         Semchk loop regenerates."
    );
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    println!("Reproduction of Figure 2 (DATE'05 TG paper)\n");
    private_slave_pattern(&out_dir);
    semaphore_contention_pattern(&out_dir);
}
