//! Reproduces the paper's **trace-collection overhead** measurement
//! (§6): a plain benchmark run vs the same run with TG tracing enabled,
//! plus the one-time trace parsing/translation cost.
//!
//! The paper's numbers (MP matrix, 4 ARM cores, AMBA): plain 128 s,
//! traced 147 s (≈15 % overhead), parsing/elaboration 145 s for a 20 MB
//! trace — all one-time costs buying 2–4× speedups in every subsequent
//! exploration run.
//!
//! Usage: `cargo run --release -p ntg-bench --bin overhead`

use ntg_bench::{run_checked, time};
use ntg_core::{assemble, TraceTranslator, TranslationMode};
use ntg_platform::InterconnectChoice;
use ntg_workloads::Workload;

fn main() {
    let workload = Workload::MpMatrix { n: 24 };
    let cores = 4;
    println!(
        "Trace-collection overhead — {} {}P on AMBA (paper §6)\n",
        workload.name(),
        cores
    );

    // Plain run.
    let mut plain = workload
        .build_platform(cores, InterconnectChoice::Amba, false)
        .expect("build");
    let plain_report = run_checked(&mut plain, "plain");
    let plain_wall = plain_report.wall_time;

    // Traced run.
    let mut traced = workload
        .build_platform(cores, InterconnectChoice::Amba, true)
        .expect("build");
    let traced_report = run_checked(&mut traced, "traced");
    let traced_wall = traced_report.wall_time;

    // Trace size and translation cost.
    let traces: Vec<_> = (0..cores)
        .map(|c| traced.trace(c).expect("traced"))
        .collect();
    let trc_bytes: usize = traces.iter().map(|t| t.to_trc().len()).sum();
    let translator = TraceTranslator::new(traced.translator_config(TranslationMode::Reactive));
    let (images, translate_wall) = time(|| {
        traces
            .iter()
            .map(|t| assemble(&translator.translate(t).expect("translate")).expect("assemble"))
            .collect::<Vec<_>>()
    });
    let bin_bytes: usize = images.iter().map(|i| i.to_bytes().len()).sum();

    println!("plain benchmark run        : {:>10.3?}", plain_wall);
    println!(
        "run with TG tracing enabled: {:>10.3?}  (+{:.1}%)",
        traced_wall,
        (traced_wall.as_secs_f64() / plain_wall.as_secs_f64() - 1.0) * 100.0
    );
    println!(
        "trace parsing + translation: {:>10.3?}  ({} KiB .trc → {} KiB .bin)",
        translate_wall,
        trc_bytes / 1024,
        bin_bytes / 1024
    );
    println!(
        "\nAll of the above are one-time costs; every subsequent exploration \
         run with TGs enjoys the Table 2 speedup."
    );
}
