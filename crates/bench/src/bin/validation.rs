//! Reproduces the paper's **first experiment** (§6): traces of the same
//! benchmark collected on *different interconnects* (AMBA vs ×pipes vs
//! the ideal transactional fabric) must translate to **identical** `.tgp`
//! programs — demonstrating that the flow really decouples IP-core
//! behaviour from the interconnect.
//!
//! Usage: `cargo run --release -p ntg-bench --bin validation`

use ntg_bench::translate_programs;
use ntg_core::tgp::to_tgp;
use ntg_core::TranslationMode;
use ntg_platform::InterconnectChoice;
use ntg_workloads::Workload;

fn main() {
    let cases: Vec<(Workload, usize)> = vec![
        (Workload::SpMatrix { n: 8 }, 1),
        (Workload::Cacheloop { iterations: 5_000 }, 4),
        (Workload::MpMatrix { n: 12 }, 4),
        (Workload::Des { blocks_per_core: 4 }, 4),
    ];
    let fabrics = [
        InterconnectChoice::Amba,
        InterconnectChoice::Xpipes,
        InterconnectChoice::Ideal,
    ];

    println!("Validation experiment: .tgp identity across interconnects\n");
    let mut all_ok = true;
    for (workload, cores) in cases {
        let reference: Vec<String> =
            translate_programs(workload, cores, fabrics[0], TranslationMode::Reactive)
                .iter()
                .map(to_tgp)
                .collect();
        let mut verdict = "IDENTICAL";
        for &fabric in &fabrics[1..] {
            let other: Vec<String> =
                translate_programs(workload, cores, fabric, TranslationMode::Reactive)
                    .iter()
                    .map(to_tgp)
                    .collect();
            if other != reference {
                verdict = "DIFFERENT";
                all_ok = false;
                for (core, (a, b)) in reference.iter().zip(&other).enumerate() {
                    if a != b {
                        eprintln!(
                            "  {} {cores}P core {core}: {} vs {} differ",
                            workload.name(),
                            fabrics[0],
                            fabric
                        );
                    }
                }
            }
        }
        let instrs: usize = reference.iter().map(|p| p.lines().count()).sum();
        println!(
            "{:<10} {:>2}P  traced on {:?}  → {:>6} .tgp lines  [{verdict}]",
            workload.name(),
            cores,
            fabrics.map(|f| f.to_string()),
            instrs,
        );
    }
    println!(
        "\n{}",
        if all_ok {
            "RESULT: a check across .tgp programs showed no difference at all \
             (paper §6, experiment 1: reproduced)"
        } else {
            "RESULT: MISMATCH — translation is not interconnect-invariant"
        }
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
