//! Reproduces the paper's **Table 2**: cumulative execution time (cycles)
//! and simulation wall time for ARM-style CPU cores vs traffic
//! generators, across the four benchmarks and the paper's processor
//! sweep, all on the AMBA interconnect.
//!
//! A thin frontend over the `ntg-explore` campaign engine: the sweep is
//! declared as a [`CampaignSpec`], the engine runs it (tracing each
//! workload/core-count once, translating once, caching the TG images),
//! and this binary formats the CPU/TG result pairs as the paper's table.
//!
//! Usage: `cargo run --release -p ntg-bench --bin table2 [--quick] [--threads N]`

use std::time::Duration;

use ntg_bench::{format_table2, paper_workloads, quick_workloads, Table2Row};
use ntg_explore::{run_campaign, CampaignSpec, CoreSelection, RunOptions};
use ntg_workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    let mut spec = CampaignSpec::new(if quick { "table2-quick" } else { "table2" });
    spec.workloads = if quick {
        quick_workloads()
    } else {
        paper_workloads()
    };
    spec.cores = CoreSelection::Paper;
    spec.repeats = if quick { 1 } else { 3 };

    println!("Reproduction of Table 2 (DATE'05 TG paper) — interconnect: AMBA");
    println!(
        "workload scale: {}\n",
        if quick { "quick" } else { "paper" }
    );

    let outcome = run_campaign(
        &spec,
        &RunOptions {
            threads,
            quiet: false,
            ..RunOptions::default()
        },
    )
    .expect("campaign ran");

    // Pair each (workload, cores)'s CPU and TG results into a table row.
    let mut rows = Vec::new();
    for cpu in outcome.results.iter().filter(|r| r.master == "cpu") {
        let tg = outcome
            .results
            .iter()
            .find(|r| r.master == "tg" && r.workload == cpu.workload && r.cores == cpu.cores)
            .expect("every CPU job has a TG counterpart");
        for r in [cpu, tg] {
            assert!(r.error.is_none(), "{}: {:?}", r.key, r.error);
            assert_eq!(r.verified, Some(true), "{} must verify", r.key);
        }
        let workload: Workload = cpu.workload.parse().expect("own spec string parses");
        rows.push(Table2Row {
            bench: workload.name(),
            cores: cpu.cores,
            arm_cycles: cpu.cycles.expect("cpu run completed"),
            tg_cycles: tg.cycles.expect("tg run completed"),
            arm_wall: Duration::from_secs_f64(cpu.wall_secs),
            tg_wall: Duration::from_secs_f64(tg.wall_secs),
        });
    }
    println!("{}", format_table2(&rows));
    println!("{}", outcome.cache.summary_line());
}
