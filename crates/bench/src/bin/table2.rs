//! Reproduces the paper's **Table 2**: cumulative execution time (cycles)
//! and simulation wall time for ARM-style CPU cores vs traffic
//! generators, across the four benchmarks and the paper's processor
//! sweep, all on the AMBA interconnect.
//!
//! Usage: `cargo run --release -p ntg-bench --bin table2 [--quick]`

use ntg_bench::{format_table2, paper_workloads, quick_workloads, table2_row};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let workloads = if quick {
        quick_workloads()
    } else {
        paper_workloads()
    };
    let repeats = if quick { 1 } else { 3 };

    println!("Reproduction of Table 2 (DATE'05 TG paper) — interconnect: AMBA");
    println!("workload scale: {}\n", if quick { "quick" } else { "paper" });

    let mut rows = Vec::new();
    for workload in workloads {
        for cores in workload.paper_core_counts() {
            eprintln!("running {} {}P ...", workload.name(), cores);
            rows.push(table2_row(workload, cores, repeats));
        }
    }
    println!("{}", format_table2(&rows));
}
