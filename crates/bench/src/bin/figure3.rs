//! Reproduces the paper's **Figure 3**: a raw MPARM-style trace listing
//! (`.trc`) side by side with the TG program (`.tgp`) the translator
//! derives from it — including the semaphore-polling collapse into a
//! `Semchk` loop.
//!
//! The trace is produced by actually simulating a small program that
//! performs the same access pattern as the paper's listing: a read, a
//! write, another read, then a semaphore poll.
//!
//! Usage: `cargo run -p ntg-bench --bin figure3`

use ntg_core::{tgp, TraceTranslator, TranslationMode};
use ntg_cpu::isa::{R0, R1, R2, R3, R4};
use ntg_cpu::Asm;
use ntg_platform::{mem_map, InterconnectChoice, PlatformBuilder};

fn main() {
    let shared = mem_map::SHARED_BASE;
    let sem = mem_map::semaphore(3);

    // The traced core: RD, WR, RD with compute gaps, then a semaphore
    // poll that another master holds locked for a while.
    let mut a = Asm::new();
    a.li(R2, shared + 0x104);
    a.ldw(R3, R2, 0); // RD
    a.li(R4, 2);
    a.label("g1");
    a.addi(R4, R4, -1);
    a.bne(R4, R0, "g1");
    a.li(R2, shared + 0x20);
    a.li(R1, 0x111);
    a.stw(R1, R2, 0); // WR
    a.li(R4, 8);
    a.label("g2");
    a.addi(R4, R4, -1);
    a.bne(R4, R0, "g2");
    a.li(R2, shared + 0x30);
    a.ldw(R3, R2, 0); // RD
                      // Poll the semaphore (locked by master 1 for a while).
    a.li(R2, sem);
    a.li(R1, 1);
    a.label("poll");
    a.ldw(R3, R2, 0);
    a.bne(R3, R1, "poll");
    a.halt();
    let traced = a.assemble(mem_map::private_base(0)).unwrap();

    // The lock holder: grabs the semaphore instantly, holds, releases.
    let mut h = Asm::new();
    h.li(R2, sem);
    h.ldw(R3, R2, 0); // acquire (first touch wins: starts free)
    h.li(R4, 150);
    h.label("hold");
    h.addi(R4, R4, -1);
    h.bne(R4, R0, "hold");
    h.li(R1, 1);
    h.stw(R1, R2, 0); // release
    h.halt();
    let holder = h.assemble(mem_map::private_base(1)).unwrap();

    let mut b = PlatformBuilder::new();
    b.interconnect(InterconnectChoice::Amba).tracing(true);
    b.add_cpu(traced);
    b.add_cpu(holder);
    let mut p = b.build().unwrap();
    assert!(p.run(100_000).completed);

    let trace = p.trace(0).unwrap();
    let translator = TraceTranslator::new(p.translator_config(TranslationMode::Reactive));
    let program = translator.translate(&trace).unwrap();

    println!("Reproduction of Figure 3 (DATE'05 TG paper)\n");
    println!("=== (a) collected trace (.trc) ===\n{}", trace.to_trc());
    println!(
        "=== (b) derived TG program (.tgp) ===\n{}",
        tgp::to_tgp(&program)
    );
    println!(
        "Note the Semchk loop: any number of failed polls in (a) collapses \
         into the canonical Read/If pair in (b)."
    );
}
