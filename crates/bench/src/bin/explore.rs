//! Design-space exploration — the paper's whole *point*: translate once,
//! then evaluate many interconnect candidates with fast TG simulations.
//!
//! A thin frontend over the `ntg-explore` campaign engine: one TG-only
//! campaign across all five fabrics. The engine's artifact cache
//! guarantees the property this experiment demonstrates — one traced
//! reference simulation, one translation, then every fabric reuses the
//! same TG images (the cache summary proves it).
//!
//! Usage: `cargo run --release -p ntg-bench --bin explore`

use ntg_explore::{run_campaign, CampaignSpec, CoreSelection, MasterChoice, RunOptions};
use ntg_platform::ALL_INTERCONNECTS;
use ntg_workloads::Workload;

fn main() {
    let workload = Workload::MpMatrix { n: 16 };
    let cores = 4;
    println!(
        "Design-space exploration with TGs — {} {}P (traced once on AMBA)\n",
        workload.name(),
        cores
    );

    let mut spec = CampaignSpec::new("explore");
    spec.workloads = vec![workload];
    spec.cores = CoreSelection::List(vec![cores]);
    spec.interconnects = ALL_INTERCONNECTS.to_vec();
    spec.masters = vec![MasterChoice::Tg];
    // A bounded run instead of a checked one: some design points
    // legitimately never finish — static-priority arbitration starves a
    // spinlock holder behind higher-priority pollers, a classic livelock
    // this exploration is meant to expose.
    spec.max_cycles = 5_000_000;

    let outcome = run_campaign(&spec, &RunOptions::default()).expect("campaign ran");

    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>18}",
        "fabric", "exec cycles", "transactions", "sim time", "latency mean/max"
    );
    for r in &outcome.results {
        assert!(r.error.is_none(), "{}: {:?}", r.key, r.error);
        let latency = match (r.latency_mean, r.latency_max) {
            (Some(mean), Some(max)) => format!("{mean:.1}/{max}"),
            _ => "-".into(),
        };
        let sim_time = format!("{:.3?}", std::time::Duration::from_secs_f64(r.wall_secs));
        match r.cycles {
            Some(cycles) => println!(
                "{:<12} {:>14} {:>14} {:>12} {:>18}",
                r.interconnect, cycles, r.transactions, sim_time, latency,
            ),
            None => println!(
                "{:<12} {:>14} {:>14} {:>12} {:>18}  (livelock: pollers starve the lock holder)",
                r.interconnect, "DNF", r.transactions, sim_time, latency,
            ),
        }
    }
    println!(
        "\nEvery row reuses the same TG images: one reference simulation, \
         many cheap cycle-true interconnect evaluations."
    );
    println!("{}", outcome.cache.summary_line());
}
