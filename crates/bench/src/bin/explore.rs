//! Design-space exploration — the paper's whole *point*: translate once,
//! then evaluate many interconnect candidates with fast TG simulations.
//!
//! One set of TG programs (traced on AMBA) is replayed on all four
//! interconnect models; the table shows how completion time and traffic
//! shift with the fabric.
//!
//! Usage: `cargo run --release -p ntg-bench --bin explore`

use ntg_bench::trace_and_translate;
use ntg_platform::InterconnectChoice;
use ntg_workloads::Workload;

fn main() {
    let workload = Workload::MpMatrix { n: 16 };
    let cores = 4;
    println!(
        "Design-space exploration with TGs — {} {}P (traced once on AMBA)\n",
        workload.name(),
        cores
    );

    let images = trace_and_translate(workload, cores, InterconnectChoice::Amba);
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>18}",
        "fabric", "exec cycles", "transactions", "sim time", "latency mean/max"
    );
    for fabric in [
        InterconnectChoice::Amba,
        InterconnectChoice::AmbaFixedPriority,
        InterconnectChoice::Crossbar,
        InterconnectChoice::Xpipes,
        InterconnectChoice::Ideal,
    ] {
        let mut p = workload
            .build_tg_platform(images.clone(), fabric, false)
            .expect("build TG platform");
        // A bounded run instead of run_checked: some design points
        // legitimately never finish — static-priority arbitration starves
        // a spinlock holder behind higher-priority pollers, a classic
        // livelock this exploration is meant to expose.
        let report = p.run(5_000_000);
        let latency = p
            .interconnect_latency()
            .map(|(mean, max)| format!("{mean:.1}/{max}"))
            .unwrap_or_else(|| "-".into());
        match report.execution_time() {
            Some(cycles) => println!(
                "{:<12} {:>14} {:>14} {:>11.3?} {:>18}",
                fabric.to_string(),
                cycles,
                p.interconnect_transactions(),
                report.wall_time,
                latency,
            ),
            None => println!(
                "{:<12} {:>14} {:>14} {:>11.3?} {:>18}  (livelock: pollers starve the lock holder)",
                fabric.to_string(),
                "DNF",
                p.interconnect_transactions(),
                report.wall_time,
                latency,
            ),
        }
    }
    println!(
        "\nEvery row reuses the same TG images: one reference simulation, \
         many cheap cycle-true interconnect evaluations."
    );
}
