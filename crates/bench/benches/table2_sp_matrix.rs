//! Bench (in-tree `minibench` harness) for Table 2, SP matrix row: simulation throughput of
//! the ARM-core platform vs the TG platform (1 processor, AMBA).
//!
//! The paper's "Gain" column is the ratio of the two medians.

use ntg_bench::minibench::{criterion_group, criterion_main, Criterion};
use ntg_bench::trace_and_translate;
use ntg_platform::InterconnectChoice;
use ntg_workloads::Workload;

fn bench(c: &mut Criterion) {
    let workload = Workload::SpMatrix { n: 8 };
    let images = trace_and_translate(workload, 1, InterconnectChoice::Amba);

    let mut group = c.benchmark_group("table2/sp_matrix_1p");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("arm", |b| {
        b.iter(|| {
            let mut p = workload
                .build_platform(1, InterconnectChoice::Amba, false)
                .expect("build");
            let report = p.run(ntg_bench::MAX_CYCLES);
            assert!(report.completed);
            report.cycles
        })
    });
    group.bench_function("tg", |b| {
        b.iter(|| {
            let mut p = workload
                .build_tg_platform(images.clone(), InterconnectChoice::Amba, false)
                .expect("build");
            let report = p.run(ntg_bench::MAX_CYCLES);
            assert!(report.completed);
            report.cycles
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
