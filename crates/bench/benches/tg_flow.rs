//! Bench (in-tree `minibench` harness) of the TG tool-flow stages themselves (the paper's
//! one-time costs): trace serialisation, parsing, translation, assembly
//! and image (de)serialisation.

use ntg_bench::minibench::{criterion_group, criterion_main, Criterion};
use ntg_core::{assemble, tgp, TgImage, TraceTranslator, TranslationMode, TranslatorConfig};
use ntg_platform::InterconnectChoice;
use ntg_trace::MasterTrace;
use ntg_workloads::Workload;

fn traced_platform() -> (MasterTrace, TranslatorConfig) {
    let workload = Workload::MpMatrix { n: 12 };
    let mut p = workload
        .build_platform(2, InterconnectChoice::Amba, true)
        .expect("build");
    assert!(p.run(ntg_bench::MAX_CYCLES).completed);
    (
        p.trace(0).expect("traced"),
        p.translator_config(TranslationMode::Reactive),
    )
}

fn bench(c: &mut Criterion) {
    let (trace, cfg) = traced_platform();
    let translator = TraceTranslator::new(cfg);
    let trc_text = trace.to_trc();
    let program = translator.translate(&trace).expect("translate");
    let image = assemble(&program).expect("assemble");
    let tgp_text = tgp::to_tgp(&program);
    let bin = image.to_bytes();

    let mut group = c.benchmark_group("tg_flow");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("trc_serialise", |b| b.iter(|| trace.to_trc()));
    group.bench_function("trc_parse", |b| {
        b.iter(|| MasterTrace::from_trc(&trc_text).expect("parse"))
    });
    group.bench_function("translate", |b| {
        b.iter(|| translator.translate(&trace).expect("translate"))
    });
    group.bench_function("assemble", |b| {
        b.iter(|| assemble(&program).expect("assemble"))
    });
    group.bench_function("tgp_serialise", |b| b.iter(|| tgp::to_tgp(&program)));
    group.bench_function("tgp_parse", |b| {
        b.iter(|| tgp::from_tgp(&tgp_text).expect("parse"))
    });
    group.bench_function("bin_round_trip", |b| {
        b.iter(|| TgImage::from_bytes(&bin).expect("decode"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
