//! Bench (in-tree `minibench` harness) comparing interconnect models under identical TG
//! traffic: the cost of simulating each fabric, and (via the recorded
//! cycle counts) how much wall time the cycle-true NoC models add over
//! the ideal transactional fabric — the trade-off that motivates the
//! paper's "fast reference, accurate exploration" split.

use ntg_bench::minibench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntg_bench::trace_and_translate;
use ntg_platform::InterconnectChoice;
use ntg_workloads::Workload;

fn bench(c: &mut Criterion) {
    let workload = Workload::MpMatrix { n: 12 };
    let cores = 4;
    let images = trace_and_translate(workload, cores, InterconnectChoice::Amba);

    let mut group = c.benchmark_group("interconnects/mp_matrix_4p_tg");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for fabric in [
        InterconnectChoice::Amba,
        InterconnectChoice::Crossbar,
        InterconnectChoice::Xpipes,
        InterconnectChoice::Ideal,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(fabric),
            &fabric,
            |b, &fabric| {
                b.iter(|| {
                    let mut p = workload
                        .build_tg_platform(images.clone(), fabric, false)
                        .expect("build");
                    let report = p.run(ntg_bench::MAX_CYCLES);
                    assert!(report.completed);
                    report.cycles
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
