//! Bench (in-tree `minibench` harness) for Table 2, DES rows: ARM vs TG simulation
//! throughput while scaling the processor count (per-block semaphore
//! contention; the paper sweeps 3P–12P).

use ntg_bench::minibench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntg_bench::trace_and_translate;
use ntg_platform::InterconnectChoice;
use ntg_workloads::Workload;

fn bench(c: &mut Criterion) {
    let workload = Workload::Des { blocks_per_core: 4 };
    let mut group = c.benchmark_group("table2/des");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for cores in [3usize, 4, 8, 12] {
        let images = trace_and_translate(workload, cores, InterconnectChoice::Amba);
        group.bench_with_input(BenchmarkId::new("arm", cores), &cores, |b, &cores| {
            b.iter(|| {
                let mut p = workload
                    .build_platform(cores, InterconnectChoice::Amba, false)
                    .expect("build");
                assert!(p.run(ntg_bench::MAX_CYCLES).completed);
            })
        });
        group.bench_with_input(BenchmarkId::new("tg", cores), &cores, |b, &cores| {
            let _ = cores;
            b.iter(|| {
                let mut p = workload
                    .build_tg_platform(images.clone(), InterconnectChoice::Amba, false)
                    .expect("build");
                assert!(p.run(ntg_bench::MAX_CYCLES).completed);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
