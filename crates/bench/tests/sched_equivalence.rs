//! O(active)-component scheduling must be a pure wall-time
//! optimisation: with the per-component wake wheel on or off, every
//! reported number — cycle counts, per-master halt cycles, statistics,
//! recorded traces, the metrics sidecar and the canonical campaign
//! JSONL — must be bit-identical. Only the `visited_component_cycles`
//! diagnostic (how much work the engine did, a wall-time-class number
//! that never enters canonical output) may differ.
//!
//! This suite lives in its own integration-test binary because one test
//! exercises the `NTG_NO_ACTIVE_SCHED` escape hatch, which is read from
//! the process environment when each platform is built. Tests inside
//! one binary run concurrently, so every test here serialises on
//! [`ENV_LOCK`] to keep the gate from leaking into a neighbouring
//! build.

use std::sync::Mutex;

use ntg_bench::{quick_workloads, trace_and_translate, MAX_CYCLES};
use ntg_explore::{CampaignSpec, CoreSelection, MasterChoice, RunOptions};
use ntg_platform::{InterconnectChoice, Platform, RunReport};
use ntg_workloads::synthetic::{build_synthetic_platform, SyntheticSpec};
use ntg_workloads::Workload;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Everything a run leaves behind that must be reproduction-identical.
struct Outcome {
    report: RunReport,
    trcs: Vec<String>,
}

/// `threads == 0` means the plain serial `run()` entry point.
fn run(mut platform: Platform, active: bool, threads: usize) -> Outcome {
    platform.set_active_scheduling(active);
    platform.enable_metrics();
    let report = if threads == 0 {
        platform.run(MAX_CYCLES)
    } else {
        platform.run_with_threads(MAX_CYCLES, threads)
    };
    assert!(report.completed, "run did not complete");
    assert!(report.faults.is_empty(), "faults: {:?}", report.faults);
    let trcs = platform.traces().iter().map(|t| t.to_trc()).collect();
    Outcome { report, trcs }
}

/// `on` ran with the sparse scheduler, `off` with the dense horizon
/// scan. Every *result* must match bit-for-bit. The skipped/ticked
/// split is a wall-time-class diagnostic and may differ: the dense
/// loop's exponential poll-backoff defers jumps while the platform is
/// busy, while the wake wheel skips the moment every component sleeps —
/// ticking through a skippable cycle is bit-identical to jumping it.
fn assert_equivalent(what: &str, on: &Outcome, off: &Outcome) {
    assert_eq!(on.report.cycles, off.report.cycles, "{what}: cycles");
    assert_eq!(
        on.report.finish_cycles, off.report.finish_cycles,
        "{what}: halt cycles"
    );
    assert_eq!(
        on.report.masters, off.report.masters,
        "{what}: master stats"
    );
    assert_eq!(
        on.report.transactions, off.report.transactions,
        "{what}: transactions"
    );
    assert_eq!(on.report.latency, off.report.latency, "{what}: latency");
    for (name, r) in [("sparse", &on.report), ("dense", &off.report)] {
        assert_eq!(
            r.skipped_cycles + r.ticked_cycles,
            r.cycles,
            "{what}: {name} counters must partition the run"
        );
    }
    assert_eq!(
        on.report.metrics, off.report.metrics,
        "{what}: metrics sidecar"
    );
    assert_eq!(on.trcs, off.trcs, "{what}: .trc streams");
    // The one permitted difference: the sparse engine never does *more*
    // component-tick work than the dense loop.
    assert!(
        on.report.visited_component_cycles <= off.report.visited_component_cycles,
        "{what}: sparse visited {} > dense visited {}",
        on.report.visited_component_cycles,
        off.report.visited_component_cycles,
    );
    assert_eq!(
        on.report.total_component_cycles, off.report.total_component_cycles,
        "{what}: dense work bound"
    );
}

#[test]
fn table2_runs_are_bit_identical_with_sparse_scheduling() {
    let _guard = ENV_LOCK.lock().unwrap();
    let mut sparse_won = false;
    for workload in quick_workloads() {
        let workload = workload.test_scale();
        let cores = match workload {
            Workload::SpMatrix { .. } => 1,
            _ => 2,
        };
        for fabric in [InterconnectChoice::Amba, InterconnectChoice::Xpipes] {
            let build = || {
                workload
                    .build_platform(cores, fabric, true)
                    .expect("build platform")
            };
            let on = run(build(), true, 0);
            let off = run(build(), false, 0);
            assert_equivalent(&format!("{workload} {cores}P cpu {fabric}"), &on, &off);
            sparse_won |= on.report.visited_component_cycles < off.report.visited_component_cycles;
        }
    }
    assert!(sparse_won, "the wake wheel never saved a component visit");
}

#[test]
fn tg_replays_are_bit_identical_with_sparse_scheduling() {
    let _guard = ENV_LOCK.lock().unwrap();
    let workload = Workload::MpMatrix { n: 12 }.test_scale();
    let cores = 2;
    let images = trace_and_translate(workload, cores, InterconnectChoice::Amba);
    let mut sparse_won = false;
    for fabric in [
        InterconnectChoice::Amba,
        InterconnectChoice::Xpipes,
        InterconnectChoice::Crossbar,
    ] {
        let build = || {
            workload
                .build_tg_platform(images.clone(), fabric, true)
                .expect("build TG platform")
        };
        let on = run(build(), true, 0);
        let off = run(build(), false, 0);
        assert_equivalent(&format!("{workload} {cores}P tg {fabric}"), &on, &off);
        sparse_won |= on.report.visited_component_cycles < off.report.visited_component_cycles;
    }
    assert!(sparse_won, "the wake wheel never saved a component visit");
}

#[test]
fn big_mesh_partitioned_runs_are_bit_identical_with_sparse_scheduling() {
    // The bench harness's big-mesh shapes at test-friendly packet
    // counts: serial and four row-band partitions, sparse vs dense,
    // all four bit-identical. Low-rate uniform Bernoulli traffic is
    // the sparse scheduler's home turf — most routers sleep most
    // cycles — so this is also where a stale-worklist bug would
    // surface as divergence.
    let spec: SyntheticSpec = "uniform+bernoulli@0.1/4".parse().expect("descriptor");
    let _guard = ENV_LOCK.lock().unwrap();
    for (w, h, masters, packets) in [(8u16, 8u16, 24usize, 64u64), (16, 16, 96, 24)] {
        let what = format!("{w}x{h} {masters} masters");
        let build = || {
            build_synthetic_platform(
                masters,
                InterconnectChoice::Mesh(w, h),
                spec,
                packets,
                0xB16_4E54,
            )
            .expect("build big-mesh platform")
        };
        let serial_on = run(build(), true, 0);
        let serial_off = run(build(), false, 0);
        let part_on = run(build(), true, 4);
        let part_off = run(build(), false, 4);
        assert!(
            part_on.report.partition.expect("diag").partitions >= 2,
            "{what}: did not partition"
        );
        assert_equivalent(&format!("{what} serial"), &serial_on, &serial_off);
        assert_equivalent(&format!("{what} partitioned"), &part_on, &part_off);
        assert_equivalent(
            &format!("{what} sparse serial vs partitioned"),
            &serial_on,
            &part_on,
        );
        // On a big idle-heavy mesh the win must be real, not incidental.
        assert!(
            serial_on.report.visited_component_cycles
                < serial_off.report.visited_component_cycles / 2,
            "{what}: sparse visited {} of dense {} — the wheel barely engaged",
            serial_on.report.visited_component_cycles,
            serial_off.report.visited_component_cycles,
        );
        // Serial-sparse and partitioned-sparse walk the same schedule.
        assert_eq!(
            serial_on.report.visited_component_cycles, part_on.report.visited_component_cycles,
            "{what}: serial/partitioned sparse visit mismatch"
        );
    }
}

/// Tiny Table-2 + synthetic-saturation campaign for the env-gate check:
/// CPU and TG masters on two fabrics, plus a synthetic rate sweep.
fn gate_campaign() -> CampaignSpec {
    let mut spec = CampaignSpec::new("sched-env-gate");
    spec.workloads = vec![
        Workload::SpMatrix { n: 6 },
        Workload::Cacheloop { iterations: 500 },
        Workload::Synthetic { packets: 48 },
    ];
    spec.cores = CoreSelection::List(vec![2]);
    spec.interconnects = vec![InterconnectChoice::Amba, InterconnectChoice::Xpipes];
    spec.masters = vec![MasterChoice::Cpu, MasterChoice::Tg, MasterChoice::Synthetic];
    spec.rates = vec![0.05, 0.2];
    spec
}

#[test]
fn campaign_jsonl_is_identical_with_and_without_active_scheduling() {
    let _guard = ENV_LOCK.lock().unwrap();
    let spec = gate_campaign();
    let opts = RunOptions::default();

    std::env::set_var("NTG_NO_ACTIVE_SCHED", "1");
    assert!(
        !ntg_sim::active_scheduling_enabled(),
        "gate did not register"
    );
    let dense = ntg_explore::run_campaign(&spec, &opts).expect("dense campaign");
    std::env::remove_var("NTG_NO_ACTIVE_SCHED");
    assert!(ntg_sim::active_scheduling_enabled(), "gate stuck");
    let sparse = ntg_explore::run_campaign(&spec, &opts).expect("sparse campaign");

    let lines = |r: &ntg_explore::CampaignOutcome| -> Vec<String> {
        r.results.iter().map(|j| j.render_line()).collect()
    };
    assert_eq!(lines(&dense), lines(&sparse), "canonical JSONL differs");
    // The gate really was honoured on both sides: the dense run visits
    // every component on every ticked cycle, the sparse run provably
    // skipped some of those visits.
    let visited = |r: &ntg_explore::CampaignOutcome| -> u64 {
        r.results.iter().map(|j| j.visited_component_cycles).sum()
    };
    assert!(
        visited(&sparse) < visited(&dense),
        "sparse scheduling never engaged ({} vs {})",
        visited(&sparse),
        visited(&dense),
    );
}
