//! Zero-allocation steady state for the *partitioned* engine.
//!
//! `Platform::run_with_threads` has no tick-by-tick entry point — the
//! worker threads live exactly as long as one run — so the serial
//! suite's warm-up-then-step pattern does not apply. Instead this test
//! runs the same platform recipe twice with the partitioned engine,
//! once to a 50k-cycle bound and once to 100k, and asserts the two
//! runs' allocation counts are *equal*: thread spawns, queue growth to
//! steady state, status-slot setup and report assembly are identical in
//! both runs and cancel out, so any difference could only come from
//! per-cycle allocations in the extra 150k cycles of lockstep ticking.
//!
//! Two measurement hazards, both handled the same way as the sparse
//! suite (`sched_alloc.rs`): a discarded warm-up run absorbs one-time
//! per-process lazy initialisation (thread spawn caches included), and
//! both compared bounds sit on the same queue high-water plateau
//! (50k/100k/200k bounds all allocate identically for this recipe; the
//! next one-time growth step lands between 200k and 400k).
//!
//! The test sits in its own file (its own test binary) because the
//! counting allocator is global: another test allocating concurrently
//! would poison the diff. Cargo runs test binaries sequentially, so a
//! single-test binary measures alone.
//!
//! Runs only under `--features alloc-count`, like the serial suite.

#![cfg(feature = "alloc-count")]

use ntg_bench::alloc_count;
use ntg_platform::InterconnectChoice;
use ntg_workloads::synthetic::{build_synthetic_platform, SyntheticSpec};

/// Allocations for one bounded partitioned run, start to finish.
fn allocations_for(bound: u64) -> u64 {
    // Effectively endless traffic: the packet budget outlives both
    // bounds by orders of magnitude, so each run is cut off mid-flight
    // with all four row bands still exchanging boundary traffic.
    let spec: SyntheticSpec = "uniform+bernoulli@0.2/4".parse().unwrap();
    let mut p = build_synthetic_platform(6, InterconnectChoice::Mesh(4, 4), spec, 1_000_000, 42)
        .expect("build synthetic platform");
    p.set_cycle_skipping(false);
    p.enable_metrics();
    let before = alloc_count::allocations();
    let report = p.run_with_threads(bound, 4);
    let allocs = alloc_count::allocations() - before;
    assert!(!report.completed, "traffic must outlive the {bound} bound");
    assert_eq!(report.cycles, bound, "run must stop at the bound");
    let diag = report.partition.expect("run must actually partition");
    assert!(diag.partitions >= 2, "got {} bands", diag.partitions);
    allocs
}

#[test]
fn partitioned_steady_state_ticks_do_not_allocate() {
    // Discarded: absorbs one-time per-process lazy initialisation.
    let _warmup = allocations_for(50_000);
    let short = allocations_for(50_000);
    let long = allocations_for(200_000);
    assert_eq!(
        long,
        short,
        "the extra 150k partitioned cycles allocated {} times — \
         the lockstep hot path must stay on the zero-copy plane",
        long.abs_diff(short)
    );
}
