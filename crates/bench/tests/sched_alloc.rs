//! Zero-allocation steady state for the *sparse* O(active) engine.
//!
//! The wake wheel, due queues, catch-up table, watch table and visit
//! buffers are all sized by component count when `run` seeds the
//! scheduler; from then on insert/expire/visit work on intrusive lists
//! and pre-grown buffers. This test pins that down the same way the
//! partitioned suite does: run the same endless-traffic recipe to a
//! 100k-cycle bound and to a 400k bound and assert the two runs'
//! allocation counts are *equal* — seeding, queue growth to steady
//! state and report assembly are identical in both runs and cancel out,
//! so any difference could only come from per-cycle allocations in the
//! extra 300k cycles of sparse scheduling.
//!
//! Two measurement hazards, both handled:
//!
//! * The very first run in a process carries a couple of one-time lazy
//!   initialisations (thread-locals, stdio), so a warm-up run is
//!   measured and discarded before the comparison.
//! * Queue high-water marks keep growing for a while: this recipe's
//!   last capacity doubling lands between cycle 50k and 100k, and from
//!   100k on the counts sit on a plateau (100k, 200k and 400k bounds
//!   all allocate identically). Both compared bounds sit on that
//!   plateau, so the assertion isolates pure per-cycle behaviour
//!   instead of straddling a growth step.
//!
//! Sits in its own file (its own test binary) because the counting
//! allocator is global: another test allocating concurrently would
//! poison the diff. Cargo runs test binaries sequentially, so a
//! single-test binary measures alone.
//!
//! Runs only under `--features alloc-count`, like the serial suite.

#![cfg(feature = "alloc-count")]

use ntg_bench::alloc_count;
use ntg_platform::InterconnectChoice;
use ntg_workloads::synthetic::{build_synthetic_platform, SyntheticSpec};

/// Allocations for one bounded sparse-scheduled run, start to finish.
fn allocations_for(bound: u64) -> u64 {
    // Effectively endless traffic: the packet budget outlives both
    // bounds by orders of magnitude, so each run is cut off mid-flight
    // with the wheel still cycling sleep/wake for every master.
    let spec: SyntheticSpec = "uniform+bernoulli@0.1/4".parse().unwrap();
    let mut p = build_synthetic_platform(6, InterconnectChoice::Mesh(4, 4), spec, 1_000_000, 42)
        .expect("build synthetic platform");
    // Defaults: cycle skipping and active scheduling both on — this is
    // exactly the production sparse path.
    p.enable_metrics();
    let before = alloc_count::allocations();
    let report = p.run(bound);
    let allocs = alloc_count::allocations() - before;
    assert!(!report.completed, "traffic must outlive the {bound} bound");
    assert_eq!(report.cycles, bound, "run must stop at the bound");
    assert!(
        report.visited_component_cycles < report.total_component_cycles,
        "the wake wheel never engaged ({} of {})",
        report.visited_component_cycles,
        report.total_component_cycles,
    );
    allocs
}

#[test]
fn sparse_steady_state_does_not_allocate() {
    // Discarded: absorbs one-time per-process lazy initialisation.
    let _warmup = allocations_for(100_000);
    let short = allocations_for(100_000);
    let long = allocations_for(400_000);
    assert_eq!(
        long,
        short,
        "the extra 300k sparse-scheduled cycles allocated {} times — \
         the wake wheel must stay allocation-free after seeding",
        long.abs_diff(short)
    );
}
