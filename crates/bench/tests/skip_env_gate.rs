//! The `NTG_NO_SKIP` escape hatch must disable cycle skipping without
//! changing any canonical campaign output.
//!
//! This lives in its own integration-test binary (its own process): the
//! gate is read from the environment when each platform is built, so the
//! test mutates the process environment and must not share it with
//! concurrently running tests.

use ntg_explore::{CampaignSpec, CoreSelection, RunOptions};
use ntg_platform::InterconnectChoice;
use ntg_workloads::Workload;

fn tiny_campaign() -> CampaignSpec {
    let mut spec = CampaignSpec::new("skip-env-gate");
    spec.workloads = vec![
        Workload::SpMatrix { n: 6 },
        Workload::Cacheloop { iterations: 500 },
    ];
    spec.cores = CoreSelection::List(vec![1]);
    spec.interconnects = vec![InterconnectChoice::Amba, InterconnectChoice::Crossbar];
    spec
}

#[test]
fn campaign_jsonl_is_identical_with_and_without_skipping() {
    let spec = tiny_campaign();
    let opts = RunOptions::default();

    std::env::set_var("NTG_NO_SKIP", "1");
    let plain = ntg_explore::run_campaign(&spec, &opts).expect("plain campaign");
    std::env::remove_var("NTG_NO_SKIP");
    let skipping = ntg_explore::run_campaign(&spec, &opts).expect("skipping campaign");

    let lines = |r: &ntg_explore::CampaignOutcome| -> Vec<String> {
        r.results.iter().map(|j| j.render_line()).collect()
    };
    assert_eq!(lines(&plain), lines(&skipping), "canonical JSONL differs");
    // The gate really was honoured on both sides.
    assert!(
        plain.results.iter().all(|j| j.skipped_cycles == 0),
        "NTG_NO_SKIP=1 still skipped"
    );
    assert!(
        skipping.results.iter().any(|j| j.skipped_cycles > 0),
        "skipping never engaged"
    );
}
