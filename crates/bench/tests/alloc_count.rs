//! Zero-allocation steady-state regression test.
//!
//! With the inline `DataWords` payloads and interned identifiers, the
//! ticked hot path — master tick, interconnect tick, slave tick — must
//! not touch the heap at all once the platform has warmed up: every
//! request/response payload fits the inline representation and every
//! queue has reached its high-water capacity. This test pins that down
//! with the counting global allocator; a single new `Vec` per cycle
//! anywhere in the data plane fails it.
//!
//! Runs only under `--features alloc-count` (CI's bench-smoke stage does
//! so); without the feature the file compiles to nothing.

#![cfg(feature = "alloc-count")]

use ntg_bench::{alloc_count, trace_and_translate};
use ntg_platform::InterconnectChoice;
use ntg_workloads::synthetic::{build_synthetic_platform, SyntheticSpec};
use ntg_workloads::Workload;

#[test]
fn steady_state_ticks_do_not_allocate() {
    let workload = Workload::Cacheloop { iterations: 5_000 };
    let cores = 2;
    let images = trace_and_translate(workload, cores, InterconnectChoice::Amba);
    let mut p = workload
        .build_tg_platform(images, InterconnectChoice::Amba, false)
        .expect("build TG platform");
    // Tick-by-tick: `step` never skips, so every cycle exercises the
    // full data plane, and it builds no report that would allocate.
    p.set_cycle_skipping(false);

    // Warm up: first transactions grow channel queues and stats buffers
    // to their steady-state capacity.
    p.step(2_000);
    assert!(
        !p.is_quiesced(),
        "warmup must leave live traffic to measure"
    );

    let allocs_before = alloc_count::allocations();
    let bytes_before = alloc_count::bytes();
    p.step(10_000);
    let allocs = alloc_count::allocations() - allocs_before;
    let bytes = alloc_count::bytes() - bytes_before;

    assert_eq!(
        allocs, 0,
        "steady-state hot path allocated {allocs} times ({bytes} bytes) \
         over 10k cycles — the zero-copy data plane regressed"
    );
}

#[test]
fn steady_state_ticks_do_not_allocate_with_metrics_enabled() {
    // The opt-in metrics layer must stay counters-only on the hot
    // path: the windowed utilization series pre-allocates its buffer
    // when enabled and merges windows in place at capacity, so sampling
    // every ticked cycle adds zero steady-state allocations.
    let workload = Workload::Cacheloop { iterations: 5_000 };
    let cores = 2;
    let images = trace_and_translate(workload, cores, InterconnectChoice::Amba);
    let mut p = workload
        .build_tg_platform(images, InterconnectChoice::Amba, false)
        .expect("build TG platform");
    p.set_cycle_skipping(false);
    p.enable_metrics();

    p.step(2_000);
    assert!(
        !p.is_quiesced(),
        "warmup must leave live traffic to measure"
    );

    let allocs_before = alloc_count::allocations();
    let bytes_before = alloc_count::bytes();
    p.step(10_000);
    let allocs = alloc_count::allocations() - allocs_before;
    let bytes = alloc_count::bytes() - bytes_before;

    assert_eq!(
        allocs, 0,
        "metrics-enabled hot path allocated {allocs} times ({bytes} bytes) \
         over 10k cycles — the observer must be counters-only when on"
    );
}

#[test]
fn synthetic_steady_state_ticks_do_not_allocate() {
    // SyntheticTg generates traffic straight from its PRNG: no trace,
    // no program, no translation. With ≤4-word packets every payload
    // stays in the inline `DataWords` representation, so the generator
    // must be exactly as allocation-free as the TG replay — including
    // with the metrics observer sampling every cycle.
    let spec: SyntheticSpec = "uniform+bernoulli@0.1/4".parse().unwrap();
    let mut p = build_synthetic_platform(4, InterconnectChoice::Xpipes, spec, 1_000_000, 42)
        .expect("build synthetic platform");
    p.set_cycle_skipping(false);
    p.enable_metrics();

    p.step(2_000);
    assert!(
        !p.is_quiesced(),
        "warmup must leave live traffic to measure"
    );

    let allocs_before = alloc_count::allocations();
    let bytes_before = alloc_count::bytes();
    p.step(10_000);
    let allocs = alloc_count::allocations() - allocs_before;
    let bytes = alloc_count::bytes() - bytes_before;

    assert_eq!(
        allocs, 0,
        "synthetic steady state allocated {allocs} times ({bytes} bytes) \
         over 10k cycles — SyntheticTg must stay on the zero-copy plane"
    );
}

#[test]
fn two_platforms_on_two_threads_stay_allocation_free() {
    // The arena data plane makes a platform a plain `Send` value, so
    // campaign workers run whole platforms on worker threads. The
    // zero-steady-state-allocation property must hold there too — and
    // concurrently, since the counting allocator is global: any
    // per-cycle allocation on either thread shows up in the shared
    // counters. Both platforms warm up first (queue growth, lazy sync
    // primitives, thread bookkeeping) before the measured window opens.
    let workload = Workload::Cacheloop { iterations: 5_000 };
    let cores = 2;
    let images = trace_and_translate(workload, cores, InterconnectChoice::Amba);
    let build = || {
        let mut p = workload
            .build_tg_platform(images.clone(), InterconnectChoice::Amba, false)
            .expect("build TG platform");
        p.set_cycle_skipping(false);
        p.enable_metrics();
        p
    };
    let mut a = build();
    let mut b = build();

    // Warm up on the worker threads themselves so thread-spawn and
    // first-tick growth allocations land outside the measured window.
    let barrier = std::sync::Barrier::new(2);
    std::thread::scope(|s| {
        let handles = [&mut a, &mut b].map(|p| {
            let barrier = &barrier;
            s.spawn(move || {
                p.step(2_000);
                assert!(!p.is_quiesced(), "warmup must leave live traffic");
                barrier.wait();
                let allocs_before = alloc_count::allocations();
                p.step(10_000);
                alloc_count::allocations() - allocs_before
            })
        });
        for h in handles {
            let allocs = h.join().unwrap();
            assert_eq!(
                allocs, 0,
                "concurrent steady-state hot path allocated {allocs} times \
                 over 10k cycles — the Send data plane regressed"
            );
        }
    });
}
