//! Partitioned execution must be a pure wall-time optimisation, exactly
//! like cycle skipping: `Platform::run` (the serial loop),
//! `run_with_threads(…, 1)` (the serial fallback) and
//! `run_with_threads(…, 4)` (an actual row-band mesh split) must agree
//! bit-for-bit on every reported number — cycle counts, per-master halt
//! cycles, statistics, recorded traces and the metrics sidecar — with
//! cycle skipping on and off. Even the skipped/ticked split must match,
//! because the control thread replicates the serial loop's poll-backoff
//! decisions verbatim.

use ntg_bench::{quick_workloads, trace_and_translate, MAX_CYCLES};
use ntg_platform::{InterconnectChoice, Platform, RunReport};
use ntg_workloads::synthetic::{build_synthetic_platform, SyntheticSpec};
use ntg_workloads::Workload;

/// Everything a run leaves behind that must be reproduction-identical.
struct Outcome {
    report: RunReport,
    trcs: Vec<String>,
}

/// `threads == 0` means the plain serial `run()` entry point.
fn run(mut platform: Platform, skip: bool, threads: usize) -> Outcome {
    platform.set_cycle_skipping(skip);
    platform.enable_metrics();
    let report = if threads == 0 {
        platform.run(MAX_CYCLES)
    } else {
        platform.run_with_threads(MAX_CYCLES, threads)
    };
    assert!(report.completed, "run did not complete");
    assert!(report.faults.is_empty(), "faults: {:?}", report.faults);
    let trcs = platform.traces().iter().map(|t| t.to_trc()).collect();
    Outcome { report, trcs }
}

fn assert_identical(what: &str, a: &Outcome, b: &Outcome) {
    assert_eq!(a.report.cycles, b.report.cycles, "{what}: cycles");
    assert_eq!(
        a.report.finish_cycles, b.report.finish_cycles,
        "{what}: halt cycles"
    );
    assert_eq!(a.report.masters, b.report.masters, "{what}: master stats");
    assert_eq!(
        a.report.transactions, b.report.transactions,
        "{what}: transactions"
    );
    assert_eq!(a.report.latency, b.report.latency, "{what}: latency");
    assert_eq!(
        a.report.skipped_cycles, b.report.skipped_cycles,
        "{what}: skipped cycles"
    );
    assert_eq!(
        a.report.ticked_cycles, b.report.ticked_cycles,
        "{what}: ticked cycles"
    );
    assert_eq!(
        a.report.metrics, b.report.metrics,
        "{what}: metrics sidecar"
    );
    assert_eq!(a.trcs, b.trcs, "{what}: .trc streams");
}

/// Checks serial == 1-thread == 4-thread for one platform recipe, and
/// that the 4-thread run really partitioned.
fn three_way(what: &str, build: impl Fn() -> Platform, skip: bool) {
    let serial = run(build(), skip, 0);
    let one = run(build(), skip, 1);
    let four = run(build(), skip, 4);
    assert!(serial.report.partition.is_none(), "{what}: serial diag");
    assert!(one.report.partition.is_none(), "{what}: 1-thread fallback");
    let diag = four.report.partition.expect("4-thread run must partition");
    assert!(
        diag.partitions >= 2,
        "{what}: got {} bands",
        diag.partitions
    );
    assert_identical(&format!("{what} serial vs 1T"), &serial, &one);
    assert_identical(&format!("{what} serial vs 4T"), &serial, &four);
}

/// The smallest canonical mesh holding `cores` masters and their
/// `cores + 3` slaves with enough rows to split four ways.
fn mesh_for(cores: usize) -> InterconnectChoice {
    let nodes = 2 * cores + 3;
    InterconnectChoice::Mesh(2, nodes.div_ceil(2) as u16)
}

#[test]
fn cpu_workloads_partition_bit_identically() {
    for workload in quick_workloads() {
        let workload = workload.test_scale();
        let cores = match workload {
            Workload::SpMatrix { .. } => 1,
            _ => 2,
        };
        let fabric = mesh_for(cores);
        for skip in [true, false] {
            three_way(
                &format!("{workload} {cores}P cpu {fabric} skip={skip}"),
                || {
                    workload
                        .build_platform(cores, fabric, true)
                        .expect("build platform")
                },
                skip,
            );
        }
    }
}

#[test]
fn tg_replays_partition_bit_identically() {
    // Trace + translate once on AMBA (translation is fabric-independent),
    // replay the images on a partitionable mesh.
    let workload = Workload::MpMatrix { n: 12 }.test_scale();
    let cores = 2;
    let images = trace_and_translate(workload, cores, InterconnectChoice::Amba);
    let fabric = mesh_for(cores);
    for skip in [true, false] {
        three_way(
            &format!("{workload} {cores}P tg {fabric} skip={skip}"),
            || {
                workload
                    .build_tg_platform(images.clone(), fabric, true)
                    .expect("build TG platform")
            },
            skip,
        );
    }
}

#[test]
fn synthetic_traffic_partitions_bit_identically() {
    // Same descriptors as the skip-equivalence suite: steady Bernoulli,
    // bursty on/off with long idle phases, deterministic transpose under
    // periodic bursts — plus enough load to keep boundary links busy.
    let specs = [
        "uniform+bernoulli@0.1/4",
        "hotspot:80+onoff:64:192@0.02/2",
        "transpose+burst:8@0.05/4",
    ];
    for desc in specs {
        let spec: SyntheticSpec = desc.parse().expect("descriptor parses");
        for skip in [true, false] {
            three_way(
                &format!("{desc} 4P synthetic skip={skip}"),
                || {
                    build_synthetic_platform(4, InterconnectChoice::Mesh(3, 4), spec, 96, 0xD15EA5E)
                        .expect("build synthetic platform")
                },
                skip,
            );
        }
    }
}

#[test]
fn saturated_big_mesh_partitions_bit_identically() {
    // A 4×4 mesh near saturation: heavy cross-boundary wormhole traffic
    // with sustained backpressure is exactly where a handoff or
    // occupancy-mirror bug would surface as divergence.
    let spec: SyntheticSpec = "transpose+bernoulli@0.4/4".parse().expect("parses");
    for skip in [true, false] {
        three_way(
            &format!("transpose@0.4 6P 4x4 skip={skip}"),
            || {
                build_synthetic_platform(6, InterconnectChoice::Mesh(4, 4), spec, 64, 0xBADCAFE)
                    .expect("build synthetic platform")
            },
            skip,
        );
    }
}
