//! Event-horizon cycle skipping must be a pure wall-time optimisation:
//! every reported cycle count, statistic and recorded trace is
//! bit-identical with skipping on and off. This suite pins that down
//! across the paper's four workloads and three contended interconnects,
//! for both the CPU reference platform and the TG replay.

use ntg_bench::{quick_workloads, MAX_CYCLES};
use ntg_core::{assemble, TraceTranslator, TranslationMode};
use ntg_platform::{InterconnectChoice, Platform, RunReport};
use ntg_workloads::synthetic::{build_synthetic_platform, SyntheticSpec};
use ntg_workloads::Workload;

const FABRICS: [InterconnectChoice; 3] = [
    InterconnectChoice::Amba,
    InterconnectChoice::Xpipes,
    InterconnectChoice::Crossbar,
];

fn cores_for(w: Workload) -> usize {
    match w {
        Workload::SpMatrix { .. } => 1,
        _ => 2,
    }
}

/// Runs `platform` with skipping forced on or off and returns the
/// report plus every recorded `.trc` stream.
fn run(mut platform: Platform, skip: bool) -> (RunReport, Vec<String>) {
    platform.set_cycle_skipping(skip);
    let report = platform.run(MAX_CYCLES);
    assert!(report.completed, "run did not complete");
    assert!(report.faults.is_empty(), "faults: {:?}", report.faults);
    let trcs = platform.traces().iter().map(|t| t.to_trc()).collect();
    (report, trcs)
}

fn assert_equivalent(what: &str, on: &(RunReport, Vec<String>), off: &(RunReport, Vec<String>)) {
    let (ron, trc_on) = on;
    let (roff, trc_off) = off;
    assert_eq!(ron.cycles, roff.cycles, "{what}: simulated cycles");
    assert_eq!(
        ron.finish_cycles, roff.finish_cycles,
        "{what}: per-master halt cycles"
    );
    assert_eq!(
        ron.execution_time(),
        roff.execution_time(),
        "{what}: cumulative execution time"
    );
    assert_eq!(ron.transactions, roff.transactions, "{what}: transactions");
    assert_eq!(ron.latency, roff.latency, "{what}: latency summary");
    assert_eq!(trc_on, trc_off, "{what}: .trc streams");
    // The counters partition the run, and the skip-off run ticked
    // every single cycle.
    assert_eq!(
        ron.skipped_cycles + ron.ticked_cycles,
        ron.cycles,
        "{what}: counters partition the run"
    );
    assert_eq!(roff.skipped_cycles, 0, "{what}: skip-off jumped");
    assert_eq!(roff.ticked_cycles, roff.cycles, "{what}: skip-off ticks");
}

#[test]
fn cpu_runs_are_bit_identical_across_fabrics() {
    // No engagement canary here: CPU runs are compute-bound and at test
    // scale every idle window is short enough for the horizon-poll
    // backoff to absorb it, which is the intended behaviour. The TG
    // replay test below pins down that skipping actually engages.
    for workload in quick_workloads() {
        let workload = workload.test_scale();
        let cores = cores_for(workload);
        for fabric in FABRICS {
            let build = || {
                workload
                    .build_platform(cores, fabric, true)
                    .expect("build platform")
            };
            let on = run(build(), true);
            let off = run(build(), false);
            assert_equivalent(&format!("{workload} {cores}P cpu {fabric}"), &on, &off);
        }
    }
}

#[test]
fn tg_replays_are_bit_identical_across_fabrics() {
    let mut total_skipped = 0;
    for workload in quick_workloads() {
        let workload = workload.test_scale();
        let cores = cores_for(workload);
        // Trace once on AMBA (translation is fabric-independent), then
        // compare the replay on every fabric.
        let mut traced = workload
            .build_platform(cores, InterconnectChoice::Amba, true)
            .expect("build traced platform");
        let report = traced.run(MAX_CYCLES);
        assert!(report.completed && report.faults.is_empty());
        let translator = TraceTranslator::new(traced.translator_config(TranslationMode::Reactive));
        let images: Vec<_> = (0..cores)
            .map(|c| {
                let program = translator
                    .translate(&traced.trace(c).expect("tracing was on"))
                    .expect("translate");
                assemble(&program).expect("assemble")
            })
            .collect();
        for fabric in FABRICS {
            let build = || {
                workload
                    .build_tg_platform(images.clone(), fabric, true)
                    .expect("build TG platform")
            };
            let on = run(build(), true);
            let off = run(build(), false);
            assert_equivalent(&format!("{workload} {cores}P tg {fabric}"), &on, &off);
            total_skipped += on.0.skipped_cycles;
        }
    }
    assert!(total_skipped > 0, "skipping never engaged anywhere");
}

#[test]
fn synthetic_runs_are_bit_identical_across_fabrics() {
    // Three descriptors chosen for distinct idle structure: steady
    // Bernoulli, a bursty on/off square wave at low average rate (long
    // off-phases are exactly where `skip` bookkeeping can drift), and a
    // deterministic pattern under periodic bursts.
    let specs = [
        "uniform+bernoulli@0.1/4",
        "hotspot:80+onoff:64:192@0.02/2",
        "transpose+burst:8@0.05/4",
    ];
    let mut total_skipped = 0;
    for desc in specs {
        let spec: SyntheticSpec = desc.parse().expect("descriptor parses");
        for fabric in FABRICS {
            let build = || {
                build_synthetic_platform(4, fabric, spec, 96, 0xD15EA5E)
                    .expect("build synthetic platform")
            };
            let on = run(build(), true);
            let off = run(build(), false);
            assert_equivalent(&format!("{desc} 4P synthetic {fabric}"), &on, &off);
            total_skipped += on.0.skipped_cycles;
        }
    }
    assert!(
        total_skipped > 0,
        "skipping never engaged on synthetic traffic"
    );
}
