//! Opt-in observability: the [`Observer`] hook plus alloc-free metric
//! primitives shared by instrumented components.
//!
//! The simulation loops stay metric-blind by default — an engine without
//! an observer pays one branch per visited cycle and nothing else. When
//! one is installed, the contract is *counters only on the steady path*:
//! every type in this module allocates at construction time and never
//! again, so the zero-allocation hot-path guarantee (see the
//! `alloc-count` regression test in `ntg-bench`) holds with observation
//! on as well as off.

use crate::stats::Histogram;
use crate::Cycle;

/// Per-cycle callbacks from a simulation loop.
///
/// Installed with [`Simulator::set_observer`](crate::Simulator::set_observer);
/// harnesses with their own tick loops (such as `ntg-platform`) drive
/// their observers directly with the same protocol: [`on_tick`]
/// after every executed cycle, [`on_skip`] after every event-horizon
/// jump. Implementations must not allocate in either callback.
///
/// [`on_tick`]: Observer::on_tick
/// [`on_skip`]: Observer::on_skip
pub trait Observer {
    /// Called after cycle `now` has fully executed (all components
    /// ticked).
    fn on_tick(&mut self, now: Cycle);

    /// Called after a horizon jump fast-forwarded the cycles
    /// `[from, next)` without ticking them.
    fn on_skip(&mut self, from: Cycle, next: Cycle);
}

/// Per-master link counters collected by an instrumented interconnect.
///
/// One entry per master link; all fields count cycles or events since
/// construction. Updated only at transaction events (grant, completion),
/// never by per-cycle scans, so collecting them is nearly free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkMetrics {
    /// Transactions granted to this master.
    pub grants: u64,
    /// Cycles the master's request was visible but not yet granted,
    /// summed over all grants (arbitration + fabric-busy stall).
    pub stall_cycles: u64,
    /// Cycles the fabric spent occupied on this master's transactions.
    pub busy_cycles: u64,
}

/// Arbitration-contention summary of one interconnect.
///
/// Built on demand by [`Interconnect::contention`] implementations
/// (report time, allocation is fine there); the underlying counters are
/// maintained alloc-free during simulation.
///
/// [`Interconnect::contention`]: ../../ntg_noc/trait.Interconnect.html#method.contention
#[derive(Debug, Clone)]
pub struct Contention {
    /// Times a grant was made while at least one other master was also
    /// requesting (they lost that round of arbitration).
    pub conflicts: u64,
    /// Distribution of request-visible → grant latencies, in cycles.
    pub grant_wait: Histogram,
    /// Per-master link counters, indexed by master id.
    pub links: Vec<LinkMetrics>,
}

impl Contention {
    /// An empty summary over `masters` links.
    pub fn new(masters: usize) -> Self {
        Self {
            conflicts: 0,
            grant_wait: Histogram::new("grant_wait"),
            links: vec![LinkMetrics::default(); masters],
        }
    }
}

/// A bounded-memory time series of per-window event counts.
///
/// Samples are accumulated into fixed-width cycle windows; when the
/// window buffer fills, adjacent windows are merged **in place** and the
/// window width doubles, so an arbitrarily long run fits a fixed
/// allocation made at construction. Recording never allocates — the
/// requirement that lets a [`Observer`] sample every cycle under the
/// zero-alloc steady-state contract.
///
/// Under event-horizon skipping the series stays exact: a skipped
/// stretch contributes zero events to the windows it crosses, exactly
/// as ticking it would have (skipped cycles are pure bookkeeping).
///
/// # Example
///
/// ```
/// use ntg_sim::observe::WindowSeries;
///
/// let mut s = WindowSeries::new("busy", 4, 4);
/// for now in 0..16 { s.record(now, 1); }
/// s.record(16, 0); // close the last full window
/// assert_eq!(s.windows(), &[4, 4, 4, 4]);
/// for now in 16..32 { s.record(now, 2); }
/// s.record(32, 0); // capacity hit: windows merged, width doubled
/// assert_eq!(s.window_cycles(), 8);
/// assert_eq!(s.windows(), &[8, 8, 16, 16]);
/// assert_eq!(s.total(), 48);
/// ```
#[derive(Debug, Clone)]
pub struct WindowSeries {
    name: String,
    window: Cycle,
    capacity: usize,
    windows: Vec<u64>,
    acc: u64,
    next_boundary: Cycle,
}

impl WindowSeries {
    /// Creates a series starting at cycle 0 with the given initial
    /// window width (cycles) and window-buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `capacity` is less than 2 (pair
    /// merging needs an even split).
    pub fn new(name: impl Into<String>, window: Cycle, capacity: usize) -> Self {
        assert!(window > 0, "window width must be positive");
        assert!(capacity >= 2, "capacity must be at least 2");
        Self {
            name: name.into(),
            window,
            capacity,
            windows: Vec::with_capacity(capacity),
            acc: 0,
            next_boundary: window,
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `delta` events at cycle `now`, closing any windows `now` has
    /// moved past. `now` must be monotonically non-decreasing across
    /// calls.
    #[inline]
    pub fn record(&mut self, now: Cycle, delta: u64) {
        while now >= self.next_boundary {
            self.close_window();
        }
        self.acc += delta;
    }

    fn close_window(&mut self) {
        if self.windows.len() == self.capacity {
            // Merge adjacent pairs in place and double the width. The
            // open window started on a boundary of the *new* width (the
            // buffer holds an even count of old windows), so widening it
            // keeps every window uniform.
            for i in 0..self.capacity / 2 {
                self.windows[i] = self.windows[2 * i] + self.windows[2 * i + 1];
            }
            self.windows.truncate(self.capacity / 2);
            self.next_boundary += self.window;
            self.window *= 2;
            return;
        }
        self.windows.push(self.acc);
        self.acc = 0;
        self.next_boundary += self.window;
    }

    /// Folds another series into this one, window by window.
    ///
    /// Both series must have been driven with the *same* sequence of
    /// `now` values (only the deltas may differ) — then their window
    /// structures are identical and the merged series equals one series
    /// that had recorded the sum of both deltas at every step. The
    /// partitioned mesh scheduler relies on this: each worker samples its
    /// own region at the same cycles, and the post-run merge is
    /// bit-identical to serial sampling of the whole fabric.
    ///
    /// # Panics
    ///
    /// Panics if the window structures differ (different widths, closed
    /// counts or boundaries) — that means the two series were not driven
    /// in lockstep and an elementwise sum would be meaningless.
    pub fn merge(&mut self, other: &WindowSeries) {
        assert_eq!(self.window, other.window, "window widths differ");
        assert_eq!(
            self.windows.len(),
            other.windows.len(),
            "closed window counts differ"
        );
        assert_eq!(
            self.next_boundary, other.next_boundary,
            "open-window boundaries differ"
        );
        for (w, o) in self.windows.iter_mut().zip(other.windows.iter()) {
            *w += o;
        }
        self.acc += other.acc;
    }

    /// The current window width in cycles (doubles as the run grows).
    pub fn window_cycles(&self) -> Cycle {
        self.window
    }

    /// The closed windows so far, oldest first.
    pub fn windows(&self) -> &[u64] {
        &self.windows
    }

    /// Total events recorded, including the still-open window.
    pub fn total(&self) -> u64 {
        self.windows.iter().sum::<u64>() + self.acc
    }

    /// The full series — every closed window plus the still-open one —
    /// as an owned vector. Report-time helper; allocates, so never call
    /// it from a hot loop.
    pub fn collect(&self) -> Vec<u64> {
        let mut v = self.windows.clone();
        v.push(self.acc);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_close_on_boundaries() {
        let mut s = WindowSeries::new("w", 10, 8);
        for now in 0..25 {
            s.record(now, 1);
        }
        assert_eq!(s.windows(), &[10, 10]);
        assert_eq!(s.total(), 25);
        assert_eq!(s.window_cycles(), 10);
    }

    #[test]
    fn capacity_merge_doubles_width_and_preserves_totals() {
        let mut s = WindowSeries::new("w", 1, 4);
        for now in 0..64 {
            s.record(now, now + 1);
        }
        s.record(64, 0);
        let expected: u64 = (1..=64).sum();
        assert_eq!(s.total(), expected);
        // 64 unit windows fold into 4 × 16-cycle windows.
        assert_eq!(s.window_cycles(), 16);
        assert_eq!(s.windows().len(), 4);
        let per_window: Vec<u64> = (0..4).map(|w| (16 * w + 1..=16 * (w + 1)).sum()).collect();
        assert_eq!(s.windows(), per_window.as_slice());
    }

    #[test]
    fn sparse_recording_closes_empty_windows() {
        let mut s = WindowSeries::new("w", 5, 8);
        s.record(0, 3);
        s.record(22, 4); // crosses four whole boundaries
        assert_eq!(s.windows(), &[3, 0, 0, 0]);
        assert_eq!(s.total(), 7);
    }

    #[test]
    fn merge_is_stable_under_long_runs() {
        let mut s = WindowSeries::new("w", 1, 2);
        for now in 0..1_000u64 {
            s.record(now, 1);
        }
        assert_eq!(s.total(), 1_000);
        assert!(s.windows().len() <= 2);
        assert!(s.window_cycles().is_power_of_two());
    }

    #[test]
    fn lockstep_merge_equals_summed_recording() {
        let mut a = WindowSeries::new("w", 1, 4);
        let mut b = WindowSeries::new("w", 1, 4);
        let mut whole = WindowSeries::new("w", 1, 4);
        // Same `now` sequence (including a capacity merge), split deltas.
        for now in 0..70u64 {
            let (da, db) = (now % 3, now % 5);
            a.record(now, da);
            b.record(now, db);
            whole.record(now, da + db);
        }
        a.merge(&b);
        assert_eq!(a.windows(), whole.windows());
        assert_eq!(a.total(), whole.total());
        assert_eq!(a.window_cycles(), whole.window_cycles());
    }

    #[test]
    #[should_panic(expected = "closed window counts differ")]
    fn merge_rejects_mismatched_structure() {
        let mut a = WindowSeries::new("w", 1, 8);
        let mut b = WindowSeries::new("w", 1, 8);
        a.record(5, 1);
        b.record(2, 1);
        a.merge(&b);
    }

    #[test]
    fn contention_starts_empty() {
        let c = Contention::new(3);
        assert_eq!(c.conflicts, 0);
        assert_eq!(c.links.len(), 3);
        assert_eq!(c.grant_wait.count(), 0);
        assert_eq!(c.links[0], LinkMetrics::default());
    }
}
