//! O(active)-component scheduling: the wake wheel and active set behind
//! the sparse simulation loops.
//!
//! The event-horizon protocol (see [`Activity`]) lets an engine skip
//! *globally* quiescent stretches, but a platform where one component is
//! always busy still pays a full component scan every ticked cycle. The
//! types here track wake hints *per component* so a ticked cycle visits
//! only the components that can act:
//!
//! * [`WakeWheel`] — an alloc-free hierarchical timer wheel holding at
//!   most one pending wake cycle per component;
//! * [`ActiveSet`] — the scheduler state an engine drives: which
//!   components run every cycle, which sleep in the wheel, which are
//!   parked awaiting an inbound event, plus the due queues that wheel
//!   expiries and [`WakeEvents`] touches feed;
//! * [`WakeEvents`] — the context-side log of cross-component touches
//!   that makes sleeping through a passive wait sound.
//!
//! A component skipped by the sparse loop is *individually*
//! fast-forwarded through the existing [`crate::Component::skip`]
//! contract when it is next visited, so results stay bit-identical to
//! the dense engine. Setting `NTG_NO_ACTIVE_SCHED=1` disables the
//! sparse loops process-wide (see [`active_scheduling_enabled`]) — the
//! escape hatch for bisecting a suspected hint-precision regression.
//!
//! [`Activity`]: crate::Activity

use crate::{Activity, Cycle};

/// Whether O(active)-component scheduling is enabled for this process.
///
/// On by default. Setting the `NTG_NO_ACTIVE_SCHED` environment variable
/// to anything other than `""` or `"0"` disables it, forcing the dense
/// visit-every-component loop (which still honours the global event
/// horizon, exactly as before this scheduler existed). Results are
/// bit-identical either way; only host wall time changes.
pub fn active_scheduling_enabled() -> bool {
    match std::env::var_os("NTG_NO_ACTIVE_SCHED") {
        None => true,
        Some(v) => v.is_empty() || v == "0",
    }
}

/// A context's log of cross-component touches, drained once per ticked
/// cycle by a sparse engine.
///
/// Every write that becomes visible to another component on the *next*
/// cycle (the platform's channel-visibility contract) must log a wake
/// token identifying the reader, so the engine can pull the reader out
/// of the wheel before the data becomes visible. Contexts with no
/// shared state (like `()`) log nothing, which makes sleeping on any
/// hint trivially sound.
pub trait WakeEvents {
    /// Drains every token logged since the last drain, invoking `wake`
    /// once per token. Duplicates are allowed (the scheduler dedups).
    fn drain_wakes(&mut self, wake: &mut dyn FnMut(u32));
}

impl WakeEvents for () {
    fn drain_wakes(&mut self, _wake: &mut dyn FnMut(u32)) {}
}

const NONE: u32 = u32::MAX;

/// log2 of the slot count per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels.
const LEVELS: usize = 4;
/// Cycles the wheel can represent ahead of its cursor: 64^4. Farther
/// wakes are clamped to the horizon edge — sound, because waking a
/// component early just makes it re-report its (still future) hint.
pub const WHEEL_HORIZON: Cycle = 1 << (SLOT_BITS * LEVELS as u32);

/// An alloc-free hierarchical timer wheel keyed on absolute wake cycles.
///
/// Four levels of 64 slots each cover a 64^4 ≈ 16.7M-cycle horizon with
/// O(1) insert and cancel. Entries are intrusively linked through
/// per-component index arrays sized once at construction, so steady-state
/// operation performs no heap allocation. Each level keeps a 64-bit slot
/// occupancy mask, making [`next_wake`](Self::next_wake) a handful of
/// bit-scans (it is *exact*, not a lower bound — the sparse engines jump
/// straight to it).
#[derive(Debug)]
pub struct WakeWheel {
    head: [[u32; SLOTS]; LEVELS],
    occ: [u64; LEVELS],
    next: Vec<u32>,
    prev: Vec<u32>,
    /// Packed `level * SLOTS + slot` the entry is linked in, or `NONE`.
    pos: Vec<u32>,
    wake: Vec<Cycle>,
    now: Cycle,
    len: usize,
}

impl WakeWheel {
    /// A wheel for component ids `0..n`, with its cursor at cycle 0.
    pub fn new(n: usize) -> Self {
        assert!((n as u64) < NONE as u64, "component id space overflow");
        WakeWheel {
            head: [[NONE; SLOTS]; LEVELS],
            occ: [0; LEVELS],
            next: vec![NONE; n],
            prev: vec![NONE; n],
            pos: vec![NONE; n],
            wake: vec![0; n],
            now: 0,
            len: 0,
        }
    }

    /// Pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no wake is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's cursor cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// True when `id` has a pending wake.
    pub fn contains(&self, id: u32) -> bool {
        self.pos[id as usize] != NONE
    }

    fn level_slot(&self, wake: Cycle) -> (usize, usize) {
        let delta = wake - self.now;
        let level = match delta {
            0..=0x3F => 0,
            0x40..=0xFFF => 1,
            0x1000..=0x3FFFF => 2,
            _ => 3,
        };
        let slot = ((wake >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    /// Schedules `id` to wake at absolute cycle `wake` (strictly in the
    /// future; wakes beyond the horizon are clamped to its edge). `id`
    /// must not already be scheduled — [`cancel`](Self::cancel) first.
    pub fn insert(&mut self, id: u32, wake: Cycle) {
        debug_assert!(self.pos[id as usize] == NONE, "double insert");
        debug_assert!(wake > self.now, "wake must be in the future");
        let wake = wake.min(self.now + (WHEEL_HORIZON - 1));
        let (level, slot) = self.level_slot(wake);
        let i = id as usize;
        self.wake[i] = wake;
        let head = self.head[level][slot];
        self.next[i] = head;
        self.prev[i] = NONE;
        if head != NONE {
            self.prev[head as usize] = id;
        }
        self.head[level][slot] = id;
        self.occ[level] |= 1 << slot;
        self.pos[i] = (level * SLOTS + slot) as u32;
        self.len += 1;
    }

    /// Removes `id`'s pending wake, if any; returns whether one existed.
    pub fn cancel(&mut self, id: u32) -> bool {
        let i = id as usize;
        let pos = self.pos[i];
        if pos == NONE {
            return false;
        }
        let (level, slot) = (pos as usize / SLOTS, pos as usize % SLOTS);
        let (p, n) = (self.prev[i], self.next[i]);
        if p != NONE {
            self.next[p as usize] = n;
        } else {
            self.head[level][slot] = n;
        }
        if n != NONE {
            self.prev[n as usize] = p;
        }
        if self.head[level][slot] == NONE {
            self.occ[level] &= !(1 << slot);
        }
        self.pos[i] = NONE;
        self.len -= 1;
        true
    }

    fn slot_min(&self, level: usize, slot: usize) -> Cycle {
        let mut best = Cycle::MAX;
        let mut id = self.head[level][slot];
        while id != NONE {
            best = best.min(self.wake[id as usize]);
            id = self.next[id as usize];
        }
        best
    }

    /// The exact earliest pending wake cycle, or `None` when empty.
    ///
    /// Per level, slots ahead of the cursor hold strictly later windows,
    /// so the level minimum is the minimum wake inside the first
    /// occupied slot — except the cursor slot itself, which can also
    /// hold entries a full lap away, so it is scanned unconditionally.
    pub fn next_wake(&self) -> Option<Cycle> {
        if self.len == 0 {
            return None;
        }
        let mut best = Cycle::MAX;
        for level in 0..LEVELS {
            let occ = self.occ[level];
            if occ == 0 {
                continue;
            }
            let cursor = ((self.now >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as u32;
            if occ & (1u64 << cursor) != 0 {
                best = best.min(self.slot_min(level, cursor as usize));
            }
            let ahead = occ.rotate_right(cursor) & !1;
            if ahead != 0 {
                let slot = (cursor + ahead.trailing_zeros()) as usize % SLOTS;
                best = best.min(self.slot_min(level, slot));
            }
        }
        Some(best)
    }

    /// Detaches the whole chain at `(level, slot)` and returns its head.
    fn detach(&mut self, level: usize, slot: usize) -> u32 {
        let head = self.head[level][slot];
        self.head[level][slot] = NONE;
        self.occ[level] &= !(1 << slot);
        head
    }

    /// Advances the cursor to `to` and appends every entry due at (or
    /// before) `to` onto `due`, unlinked from the wheel.
    ///
    /// The caller must not advance past a pending wake
    /// (`to <= next_wake()`), which the sparse engines guarantee by
    /// construction: jumps target the wheel minimum and ticks advance
    /// one cycle at a time.
    pub fn expire(&mut self, to: Cycle, due: &mut Vec<u32>) {
        debug_assert!(to >= self.now);
        debug_assert!(self.next_wake().is_none_or(|w| w >= to), "skipped a wake");
        self.now = to;
        // Cascade each upper level's cursor slot, highest first: its
        // window has arrived, so entries redistribute to lower levels
        // (or fall due); entries a full lap ahead re-land in place.
        for level in (1..LEVELS).rev() {
            let cursor = ((to >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            if self.occ[level] & (1 << cursor) == 0 {
                continue;
            }
            let mut id = self.detach(level, cursor);
            while id != NONE {
                let i = id as usize;
                let after = self.next[i];
                self.pos[i] = NONE;
                self.len -= 1;
                let w = self.wake[i];
                if w <= to {
                    due.push(id);
                } else {
                    self.insert(id, w);
                }
                id = after;
            }
        }
        // Level 0's cursor slot holds exactly the entries due at `to`.
        let cursor = (to & (SLOTS as u64 - 1)) as usize;
        if self.occ[0] & (1 << cursor) != 0 {
            let mut id = self.detach(0, cursor);
            while id != NONE {
                let i = id as usize;
                let after = self.next[i];
                debug_assert_eq!(self.wake[i], to);
                self.pos[i] = NONE;
                self.len -= 1;
                due.push(id);
                id = after;
            }
        }
    }
}

/// The per-component scheduling state a sparse engine drives.
///
/// Every component is either *running* (visited every cycle) or *idle*
/// (skipped until a wheel expiry or an inbound [`WakeEvents`] touch
/// re-queues it). Idle components carry a `since` cycle — the first
/// cycle they have not yet processed — and are caught up with one
/// [`Component::skip`] call when next visited, so per-cycle bookkeeping
/// stays bit-identical to the dense engine.
///
/// The driving loop per ticked cycle `now`:
///
/// 1. [`visit`](Self::visit) — the sorted set of running + due ids;
///    for each, [`take_catch_up`](Self::take_catch_up) then `tick`;
/// 2. [`reinsert`](Self::reinsert) each visited id with its fresh
///    `next_activity(now + 1)` hint;
/// 3. drain the context's [`WakeEvents`] into
///    [`wake`](Self::wake)`(id, now + 1)`;
/// 4. [`end_cycle`](Self::end_cycle) to queue the next cycle's due set.
///
/// When [`idle`](Self::idle) reports true the engine may jump straight
/// to [`next_wake`](Self::next_wake) via [`advance`](Self::advance) —
/// no per-component work at all; the catch-up machinery settles the
/// difference later.
///
/// [`Component::skip`]: crate::Component::skip
#[derive(Debug)]
pub struct ActiveSet {
    wheel: WakeWheel,
    /// Index into `running`, or `NONE` when the component is idle.
    running_pos: Vec<u32>,
    /// First unprocessed cycle of an idle component.
    since: Vec<Cycle>,
    /// Cycle the component is queued (due/next_due) for; `Cycle::MAX`
    /// when unqueued. Dedups wheel expiries against event wakes.
    queued_at: Vec<Cycle>,
    running: Vec<u32>,
    due: Vec<u32>,
    next_due: Vec<u32>,
    visit: Vec<u32>,
    visited: u64,
}

impl ActiveSet {
    /// A scheduler for component ids `0..n`, all initially idle at
    /// cycle 0 with no wake — call [`seed`](Self::seed) for each id
    /// before the first cycle.
    pub fn new(n: usize) -> Self {
        ActiveSet {
            wheel: WakeWheel::new(n),
            running_pos: vec![NONE; n],
            since: vec![0; n],
            queued_at: vec![Cycle::MAX; n],
            running: Vec::with_capacity(n),
            due: Vec::with_capacity(n),
            next_due: Vec::with_capacity(n),
            visit: Vec::with_capacity(n),
            visited: 0,
        }
    }

    /// Number of component ids managed.
    pub fn components(&self) -> usize {
        self.running_pos.len()
    }

    fn make_running(&mut self, id: u32) {
        if self.running_pos[id as usize] == NONE {
            self.running_pos[id as usize] = self.running.len() as u32;
            self.running.push(id);
        }
    }

    fn unrun(&mut self, id: u32) {
        let pos = self.running_pos[id as usize];
        if pos == NONE {
            return;
        }
        let last = *self.running.last().expect("running list is non-empty");
        self.running.swap_remove(pos as usize);
        if last != id {
            self.running_pos[last as usize] = pos;
        }
        self.running_pos[id as usize] = NONE;
    }

    /// Classifies `id`'s initial hint, evaluated at cycle `at` (the
    /// first cycle the engine will execute).
    pub fn seed(&mut self, id: u32, hint: Activity, at: Cycle) {
        self.since[id as usize] = at;
        match hint {
            Activity::Busy => self.make_running(id),
            Activity::IdleUntil(w) if w <= at => {
                self.queued_at[id as usize] = at;
                self.due.push(id);
            }
            Activity::IdleUntil(w) if w != Cycle::MAX => self.wheel.insert(id, w),
            Activity::IdleUntil(_) | Activity::Drained => {}
        }
    }

    /// True when no component runs this cycle and none is due — the
    /// engine may [`advance`](Self::advance) to the next wake.
    pub fn idle(&self) -> bool {
        self.running.is_empty() && self.due.is_empty()
    }

    /// The earliest pending wheel wake, or `None` when nothing sleeps
    /// on a timer.
    pub fn next_wake(&self) -> Option<Cycle> {
        self.wheel.next_wake()
    }

    /// Builds (and returns) the sorted visit set for cycle `now`:
    /// every running component plus everything due. Clears the due
    /// queue; visited ids keep their state until
    /// [`reinsert`](Self::reinsert).
    pub fn visit(&mut self, now: Cycle) -> &[u32] {
        self.visit.clear();
        self.visit.extend_from_slice(&self.running);
        for &id in &self.due {
            debug_assert_eq!(self.queued_at[id as usize], now);
            self.queued_at[id as usize] = Cycle::MAX;
            self.visit.push(id);
        }
        self.due.clear();
        self.visit.sort_unstable();
        debug_assert!(self.visit.windows(2).all(|w| w[0] != w[1]));
        self.visited += self.visit.len() as u64;
        &self.visit
    }

    /// If `id` slept through cycles it has not yet processed, returns
    /// the first such cycle and marks the span handled — the caller
    /// must issue `skip(since, now)` before ticking at `now`.
    pub fn take_catch_up(&mut self, id: u32, now: Cycle) -> Option<Cycle> {
        let i = id as usize;
        if self.running_pos[i] != NONE || self.since[i] >= now {
            return None;
        }
        let s = self.since[i];
        self.since[i] = now;
        Some(s)
    }

    /// Files `id`'s fresh hint after its tick at `next - 1`: `Busy`
    /// keeps it running, a finite future wake sleeps it in the wheel,
    /// an immediate wake queues it for `next`, and `Drained` or a
    /// passive wait parks it until an inbound touch.
    pub fn reinsert(&mut self, id: u32, hint: Activity, next: Cycle) {
        let i = id as usize;
        debug_assert!(!self.wheel.contains(id));
        debug_assert_eq!(self.queued_at[i], Cycle::MAX);
        match hint {
            Activity::Busy => {
                self.make_running(id);
                return;
            }
            Activity::IdleUntil(w) if w <= next => {
                self.queued_at[i] = next;
                self.next_due.push(id);
            }
            Activity::IdleUntil(w) if w != Cycle::MAX => self.wheel.insert(id, w),
            Activity::IdleUntil(_) | Activity::Drained => {}
        }
        self.unrun(id);
        self.since[i] = next;
    }

    /// An inbound touch for `id`, visible at cycle `at` (always the
    /// cycle after the current one): ensures `id` is visited at `at`.
    /// Running or already-queued components are left alone; a pending
    /// wheel wake is cancelled in favour of the earlier visit.
    pub fn wake(&mut self, id: u32, at: Cycle) {
        let i = id as usize;
        if self.running_pos[i] != NONE || self.queued_at[i] == at {
            return;
        }
        debug_assert!(self.queued_at[i] == Cycle::MAX, "queued for a past cycle");
        self.wheel.cancel(id);
        self.queued_at[i] = at;
        self.next_due.push(id);
    }

    /// Finishes cycle `now`: promotes the touch/immediate queue and the
    /// wheel expiries for `now + 1` into the due set.
    pub fn end_cycle(&mut self, now: Cycle) {
        debug_assert!(self.due.is_empty());
        std::mem::swap(&mut self.due, &mut self.next_due);
        self.expire_into_due(now + 1);
    }

    /// Jumps the scheduler from an [`idle`](Self::idle) state straight
    /// to cycle `to` (at most [`next_wake`](Self::next_wake)), queueing
    /// the wakes that fall due there. No per-component work happens —
    /// skipped spans are settled by later catch-ups.
    pub fn advance(&mut self, to: Cycle) {
        debug_assert!(self.idle());
        self.expire_into_due(to);
    }

    fn expire_into_due(&mut self, to: Cycle) {
        let start = self.due.len();
        self.wheel.expire(to, &mut self.due);
        for &id in &self.due[start..] {
            self.queued_at[id as usize] = to;
        }
    }

    /// Streams every idle component whose state lags `now` through `f`
    /// as `(id, since)` — the end-of-run pass that issues the final
    /// `skip(since, now)` catch-ups.
    pub fn drain_catch_ups(&mut self, now: Cycle, mut f: impl FnMut(u32, Cycle)) {
        for id in 0..self.running_pos.len() as u32 {
            if self.running_pos[id as usize] == NONE && self.since[id as usize] < now {
                let s = self.since[id as usize];
                self.since[id as usize] = now;
                f(id, s);
            }
        }
    }

    /// Component-cycles actually visited (Σ visit-set size over ticked
    /// cycles) — the numerator of the sparse-visit ratio.
    pub fn visited_component_cycles(&self) -> u64 {
        self.visited
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_insert_expire_single_level() {
        let mut w = WakeWheel::new(8);
        w.insert(3, 5);
        w.insert(1, 7);
        assert_eq!(w.next_wake(), Some(5));
        let mut due = Vec::new();
        w.expire(5, &mut due);
        assert_eq!(due, vec![3]);
        assert_eq!(w.next_wake(), Some(7));
        due.clear();
        w.expire(7, &mut due);
        assert_eq!(due, vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_cancel_clears_slot() {
        let mut w = WakeWheel::new(4);
        w.insert(0, 10);
        w.insert(1, 10);
        assert!(w.cancel(0));
        assert!(!w.cancel(0));
        assert_eq!(w.next_wake(), Some(10));
        assert!(w.cancel(1));
        assert_eq!(w.next_wake(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_cascades_across_levels() {
        let mut w = WakeWheel::new(4);
        // One wake per level window.
        w.insert(0, 40);
        w.insert(1, 5_000);
        w.insert(2, 300_000);
        w.insert(3, 2_000_000);
        let mut due = Vec::new();
        for expect in [40, 5_000, 300_000, 2_000_000] {
            let nw = w.next_wake().unwrap();
            assert_eq!(nw, expect);
            due.clear();
            w.expire(nw, &mut due);
            assert_eq!(due.len(), 1, "at wake {expect}");
        }
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_wrap_lap_in_cursor_slot_stays_exact() {
        // Advance so the cursor sits mid-slot, then insert a wake one
        // level-1 lap away (same slot as the cursor) plus a nearer wake
        // in a different slot: next_wake must report the nearer one.
        let mut w = WakeWheel::new(4);
        let mut due = Vec::new();
        w.insert(0, 63);
        w.expire(63, &mut due);
        assert_eq!(due, vec![0]);
        let far = 63 + 4095; // level 1, wraps into the cursor slot
        let near = 63 + 320; // level 1, five slots ahead
        w.insert(1, far);
        w.insert(2, near);
        assert_eq!(w.next_wake(), Some(near));
        due.clear();
        w.expire(near, &mut due);
        assert_eq!(due, vec![2]);
        assert_eq!(w.next_wake(), Some(far));
        due.clear();
        w.expire(far, &mut due);
        assert_eq!(due, vec![1]);
    }

    #[test]
    fn wheel_clamps_far_wakes_to_horizon() {
        let mut w = WakeWheel::new(2);
        w.insert(0, WHEEL_HORIZON * 3);
        let early = w.next_wake().unwrap();
        assert_eq!(early, WHEEL_HORIZON - 1);
        let mut due = Vec::new();
        w.expire(early, &mut due);
        assert_eq!(due, vec![0]);
        // The engine re-seeds from the component's (still future) hint.
        w.insert(0, WHEEL_HORIZON * 3);
        assert!(w.next_wake().unwrap() < WHEEL_HORIZON * 3);
    }

    #[test]
    fn wheel_stress_delivers_every_wake_in_order() {
        // Deterministic pseudo-random wakes across all level windows,
        // drained by always jumping to next_wake.
        const N: usize = 256;
        let mut w = WakeWheel::new(N);
        let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut expect: Vec<(Cycle, u32)> = (0..N as u32)
            .map(|id| {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let wake = 1 + (seed >> 33) % (WHEEL_HORIZON / 2);
                w.insert(id, wake);
                (wake, id)
            })
            .collect();
        expect.sort_unstable();
        let mut got: Vec<(Cycle, u32)> = Vec::new();
        let mut due = Vec::new();
        while let Some(nw) = w.next_wake() {
            due.clear();
            w.expire(nw, &mut due);
            assert!(!due.is_empty(), "next_wake pointed at an empty cycle");
            due.sort_unstable();
            got.extend(due.iter().map(|&id| (nw, id)));
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn wheel_sequential_ticks_cascade_lazily() {
        // Advance one cycle at a time past a level-1 wake: the entry
        // must surface exactly at its wake cycle.
        let mut w = WakeWheel::new(2);
        w.insert(0, 200);
        let mut due = Vec::new();
        for t in 1..=199 {
            w.expire(t, &mut due);
            assert!(due.is_empty(), "early wake at {t}");
        }
        w.expire(200, &mut due);
        assert_eq!(due, vec![0]);
    }

    #[test]
    fn active_set_visits_running_and_due_sorted() {
        let mut s = ActiveSet::new(4);
        s.seed(2, Activity::Busy, 0);
        s.seed(0, Activity::IdleUntil(0), 0);
        s.seed(1, Activity::IdleUntil(3), 0);
        s.seed(3, Activity::Drained, 0);
        assert!(!s.idle());
        assert_eq!(s.visit(0), &[0, 2]);
        assert_eq!(s.visited_component_cycles(), 2);
        // 0 goes busy, 2 sleeps until 5.
        s.reinsert(0, Activity::Busy, 1);
        s.reinsert(2, Activity::IdleUntil(5), 1);
        s.end_cycle(0);
        assert_eq!(s.visit(1), &[0]);
        s.reinsert(0, Activity::IdleUntil(3), 2);
        s.end_cycle(1);
        assert!(s.idle());
        assert_eq!(s.next_wake(), Some(3));
        s.advance(3);
        assert_eq!(s.visit(3), &[0, 1]);
    }

    #[test]
    fn active_set_catch_up_spans_cover_sleep() {
        let mut s = ActiveSet::new(2);
        s.seed(0, Activity::Busy, 0);
        s.seed(1, Activity::IdleUntil(10), 0);
        for t in 0..10 {
            assert_eq!(s.visit(t), &[0]);
            assert_eq!(s.take_catch_up(0, t), None);
            s.reinsert(0, Activity::Busy, t + 1);
            s.end_cycle(t);
        }
        assert_eq!(s.visit(10), &[0, 1]);
        assert_eq!(s.take_catch_up(1, 10), Some(0));
        assert_eq!(s.take_catch_up(1, 10), None);
    }

    #[test]
    fn active_set_wake_overrides_wheel() {
        let mut s = ActiveSet::new(2);
        s.seed(0, Activity::IdleUntil(100), 0);
        s.seed(1, Activity::waiting(), 0);
        assert!(s.idle());
        // A touch at cycle 4 makes both visible-at-5.
        s.advance(4);
        s.wake(0, 5);
        s.wake(1, 5);
        s.wake(1, 5); // duplicate tokens dedup
        s.end_cycle(4);
        assert_eq!(s.visit(5), &[0, 1]);
        assert_eq!(s.take_catch_up(0, 5), Some(0));
        s.reinsert(0, Activity::Drained, 6);
        s.reinsert(1, Activity::Drained, 6);
        s.end_cycle(5);
        assert!(s.idle());
        assert_eq!(s.next_wake(), None);
    }

    #[test]
    fn active_set_drain_catch_ups_flushes_sleepers() {
        let mut s = ActiveSet::new(3);
        s.seed(0, Activity::IdleUntil(50), 0);
        s.seed(1, Activity::Drained, 0);
        s.seed(2, Activity::Busy, 0);
        s.visit(0);
        s.reinsert(2, Activity::Drained, 1);
        s.end_cycle(0);
        let mut spans = Vec::new();
        s.drain_catch_ups(7, |id, since| spans.push((id, since)));
        assert_eq!(spans, vec![(0, 0), (1, 0), (2, 1)]);
        spans.clear();
        s.drain_catch_ups(7, |id, since| spans.push((id, since)));
        assert!(spans.is_empty());
    }

    #[test]
    fn env_gate_parses_like_no_skip() {
        // Plain behavioural check: absent the variable, scheduling is on.
        if std::env::var_os("NTG_NO_ACTIVE_SCHED").is_none() {
            assert!(active_scheduling_enabled());
        }
    }
}
