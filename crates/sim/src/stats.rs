//! Small statistics helpers used by devices, interconnects and harnesses.

/// A named monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use ntg_sim::stats::Counter;
///
/// let mut grants = Counter::new("bus_grants");
/// grants.add(3);
/// grants.incr();
/// assert_eq!(grants.get(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            value: 0,
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one to the counter.
    pub fn incr(&mut self) {
        self.value += 1;
    }
}

/// A latency histogram with power-of-two buckets plus exact min/max/mean.
///
/// Used to summarise per-transaction network latencies without retaining
/// every sample.
///
/// # Example
///
/// ```
/// use ntg_sim::stats::Histogram;
///
/// let mut h = Histogram::new("read_latency");
/// for v in [1u64, 2, 2, 9] { h.record(v); }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.min(), Some(1));
/// assert_eq!(h.max(), Some(9));
/// assert_eq!(h.mean(), Some(3.5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    name: String,
    /// bucket `i` counts samples in `[2^(i-1), 2^i)`, bucket 0 counts 0.
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The histogram's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// The largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The arithmetic mean of recorded samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum as f64 / self.count as f64)
    }

    /// Folds another histogram's samples into this one.
    ///
    /// Exactly equivalent to having recorded `other`'s samples here: the
    /// partitioned mesh scheduler keeps one histogram per worker thread
    /// and merges them after the run, so merged summaries are
    /// bit-identical to a serial run's.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The number of samples in the bucket covering `value`.
    pub fn bucket_for(&self, value: u64) -> u64 {
        let idx = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.name(), "x");
    }

    #[test]
    fn histogram_empty_has_no_extremes() {
        let h = Histogram::new("h");
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        let mut h = Histogram::new("h");
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        assert_eq!(h.bucket_for(0), 1); // exactly the zero bucket
        assert_eq!(h.bucket_for(1), 1); // [1,2)
        assert_eq!(h.bucket_for(2), 2); // [2,4) holds 2 and 3
        assert_eq!(h.bucket_for(4), 1); // [4,8)
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = Histogram::new("h");
        for v in [5u64, 10, 15] {
            h.record(v);
        }
        assert_eq!(h.sum(), 30);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(15));
        assert_eq!(h.mean(), Some(10.0));
    }

    #[test]
    fn histogram_merge_equals_recording_all_samples() {
        let (mut a, mut b, mut whole) = (
            Histogram::new("h"),
            Histogram::new("h"),
            Histogram::new("h"),
        );
        for v in [0u64, 1, 7, 300] {
            a.record(v);
            whole.record(v);
        }
        for v in [2u64, 9000] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::new("h"));
        assert_eq!(a, whole);
    }

    #[test]
    fn histogram_handles_u64_max() {
        let mut h = Histogram::new("h");
        h.record(u64::MAX);
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.bucket_for(u64::MAX), 1);
    }
}
