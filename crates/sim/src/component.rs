//! The [`Component`] trait implemented by every simulated hardware block.

use crate::Cycle;

/// A clocked hardware block.
///
/// A component is ticked exactly once per simulated cycle, in the order it
/// was registered with the engine. All externally visible state changes a
/// component makes during `tick` must go through handshaked channels so
/// they only become observable to other components in the following cycle;
/// this is what keeps the simulation independent of tick order.
///
/// # Example
///
/// ```
/// use ntg_sim::{Component, Cycle};
///
/// /// Counts cycles and goes idle after ten of them.
/// struct TenCycles { n: u64 }
///
/// impl Component for TenCycles {
///     fn name(&self) -> &str { "ten-cycles" }
///     fn tick(&mut self, _now: Cycle) {
///         if self.n < 10 { self.n += 1; }
///     }
///     fn is_idle(&self) -> bool { self.n == 10 }
/// }
/// ```
pub trait Component {
    /// A short, human-readable instance name used in diagnostics.
    fn name(&self) -> &str;

    /// Advances the component by one clock cycle.
    ///
    /// `now` is the index of the cycle being executed; the first call in a
    /// simulation receives `now == 0`.
    fn tick(&mut self, now: Cycle);

    /// Reports whether the component has no pending work.
    ///
    /// The engine may stop early once *every* component reports idle (see
    /// [`Simulator::run_until_idle`]). A component with outstanding
    /// requests, buffered responses or in-flight packets must return
    /// `false`. The default conservatively reports "never idle", which is
    /// always safe.
    ///
    /// [`Simulator::run_until_idle`]: crate::Simulator::run_until_idle
    fn is_idle(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Component for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn tick(&mut self, _now: Cycle) {}
    }

    #[test]
    fn default_is_idle_is_false() {
        let n = Nop;
        assert!(!n.is_idle());
        assert_eq!(n.name(), "nop");
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn Component> = Box::new(Nop);
        boxed.tick(0);
        assert_eq!(boxed.name(), "nop");
    }
}
