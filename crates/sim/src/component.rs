//! The [`Component`] trait implemented by every simulated hardware block.

use crate::Cycle;

/// A component's *wake hint*: what it would do if ticked over the coming
/// cycles.
///
/// Hints let the engine fast-forward over quiescent stretches (see
/// [`Simulator::run_until`](crate::Simulator::run_until)): when every
/// component is either [`Drained`](Activity::Drained) or
/// [`IdleUntil`](Activity::IdleUntil), no observable state can change
/// before the earliest wake cycle, so the engine may jump `now` straight
/// to that horizon after giving each component a [`Component::skip`]
/// callback to replicate any per-tick bookkeeping.
///
/// Hints must be **conservative**: it is always correct to report
/// [`Busy`](Activity::Busy) (the default), merely slower. Reporting
/// `IdleUntil(w)` is a promise that the component will not act *of its
/// own accord* before cycle `w`: absent any inbound event, ticking it at
/// any cycle `t < w` is pure bookkeeping that [`Component::skip`]
/// reproduces exactly. The engine guarantees no inbound event can arrive
/// inside a jump, because the jump target is bounded by *every*
/// component's hint — whoever would produce the event is itself `Busy`
/// or bounds the horizon with a finite wake.
///
/// That guarantee makes the *passive wait* pattern sound: a component
/// blocked on another's action (a master awaiting a response, a bus
/// awaiting a slave) with nothing queued on its channels may report
/// [`Activity::waiting()`] — an unbounded `IdleUntil` — instead of
/// `Busy`, so it never blocks a jump whose horizon the eventual actor
/// already bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// The component may act this cycle (or its wake cycle is unknown);
    /// it must be ticked normally.
    Busy,
    /// The component is idle and will not act before the given absolute
    /// cycle. Ticks strictly before that cycle are skippable.
    IdleUntil(Cycle),
    /// The component is finished: no pending work now or ever (it is
    /// idle in the [`Component::is_idle`] sense). Skippable forever.
    Drained,
}

impl Activity {
    /// A passive wait on some other component's action, with no known
    /// bound of its own: the component never acts spontaneously, so it
    /// does not limit the horizon. Sound only when every tick while
    /// waiting is pure bookkeeping that [`Component::skip`] replicates.
    pub const fn waiting() -> Self {
        Activity::IdleUntil(Cycle::MAX)
    }
}

/// A clocked hardware block.
///
/// A component is ticked exactly once per simulated cycle, in the order it
/// was registered with the engine. All externally visible state changes a
/// component makes during `tick` must go through handshaked channels so
/// they only become observable to other components in the following cycle;
/// this is what keeps the simulation independent of tick order.
///
/// # The shared context `C`
///
/// Components do not own the channels they communicate over: shared link
/// state lives in a context value owned by the engine (for the OCP data
/// plane, the `LinkArena` of `ntg-ocp`) and is threaded by `&`/`&mut`
/// reference into every trait method. Components hold only `Copy` port
/// handles (indices into the context), so a whole component graph —
/// context plus components — is a plain `Send` value that a thread can
/// own outright. Pure components that need no shared state use the
/// default `C = ()`.
///
/// # Example
///
/// ```
/// use ntg_sim::{Component, Cycle};
///
/// /// Counts cycles and goes idle after ten of them.
/// struct TenCycles { n: u64 }
///
/// impl Component for TenCycles {
///     fn name(&self) -> &str { "ten-cycles" }
///     fn tick(&mut self, _now: Cycle, _net: &mut ()) {
///         if self.n < 10 { self.n += 1; }
///     }
///     fn is_idle(&self, _net: &()) -> bool { self.n == 10 }
/// }
/// ```
pub trait Component<C = ()> {
    /// A short, human-readable instance name used in diagnostics.
    fn name(&self) -> &str;

    /// Advances the component by one clock cycle.
    ///
    /// `now` is the index of the cycle being executed; the first call in a
    /// simulation receives `now == 0`. `net` is the shared context the
    /// engine owns (the link arena for OCP systems).
    fn tick(&mut self, now: Cycle, net: &mut C);

    /// Reports whether the component has no pending work.
    ///
    /// The engine may stop early once *every* component reports idle (see
    /// [`Simulator::run_until_idle`]). A component with outstanding
    /// requests, buffered responses or in-flight packets must return
    /// `false`. The default conservatively reports "never idle", which is
    /// always safe.
    ///
    /// [`Simulator::run_until_idle`]: crate::Simulator::run_until_idle
    fn is_idle(&self, _net: &C) -> bool {
        false
    }

    /// Reports when the component next needs a real [`Component::tick`].
    ///
    /// `now` is the cycle the engine is about to execute. The default
    /// conservatively reports [`Activity::Busy`], which disables
    /// skipping for this component and is always safe. See [`Activity`]
    /// for the contract a non-`Busy` hint signs up to.
    fn next_activity(&self, _now: Cycle, _net: &C) -> Activity {
        Activity::Busy
    }

    /// Fast-forwards the component from cycle `now` to cycle `next`
    /// without executing the intervening ticks.
    ///
    /// Called by the engine instead of `tick` for every cycle in
    /// `[now, next)` when a horizon jump is taken. An implementation
    /// must update its state and statistics exactly as `next - now`
    /// consecutive idle ticks would have, so cycle counts stay
    /// bit-identical with skipping on or off. The default is a no-op,
    /// which is correct for components whose idle ticks have no side
    /// effects.
    fn skip(&mut self, _now: Cycle, _next: Cycle, _net: &mut C) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Component for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn tick(&mut self, _now: Cycle, _net: &mut ()) {}
    }

    #[test]
    fn default_is_idle_is_false() {
        let n = Nop;
        assert!(!n.is_idle(&()));
        assert_eq!(n.name(), "nop");
    }

    #[test]
    fn default_activity_is_busy() {
        let mut n = Nop;
        assert_eq!(n.next_activity(0, &()), Activity::Busy);
        assert_eq!(n.next_activity(1_000, &()), Activity::Busy);
        // Default skip is a no-op and must not panic.
        n.skip(0, 10, &mut ());
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn Component> = Box::new(Nop);
        boxed.tick(0, &mut ());
        boxed.skip(1, 2, &mut ());
        assert_eq!(boxed.name(), "nop");
        assert_eq!(boxed.next_activity(1, &()), Activity::Busy);
    }

    /// Ticks against a shared context counter — the ctx-threading shape
    /// every OCP component uses with the link arena.
    struct CtxAdder;
    impl Component<u64> for CtxAdder {
        fn name(&self) -> &str {
            "ctx-adder"
        }
        fn tick(&mut self, _now: Cycle, net: &mut u64) {
            *net += 1;
        }
    }

    #[test]
    fn context_is_threaded_by_reference() {
        let mut ctx = 0u64;
        let mut boxed: Box<dyn Component<u64>> = Box::new(CtxAdder);
        boxed.tick(0, &mut ctx);
        boxed.tick(1, &mut ctx);
        assert_eq!(ctx, 2);
        assert!(!boxed.is_idle(&ctx));
    }

    /// A boxed component graph over a plain context must be something a
    /// thread can own: `Send` when its parts are.
    #[test]
    fn send_component_graphs_cross_threads() {
        fn assert_send<T: Send>(_: &T) {}
        let graph: (u64, Vec<Box<dyn Component<u64> + Send>>) = (0, vec![Box::new(CtxAdder)]);
        assert_send(&graph);
        let (mut ctx, mut comps) = graph;
        std::thread::spawn(move || {
            for c in &mut comps {
                c.tick(0, &mut ctx);
            }
            ctx
        })
        .join()
        .map(|n| assert_eq!(n, 1))
        .unwrap();
    }
}
