//! Deterministic cycle-driven simulation kernel for the `ntg` platform.
//!
//! This crate provides the timing substrate that every other `ntg` crate is
//! built on: a cycle counter with nanosecond conversion ([`ClockConfig`]),
//! the [`Component`] trait implemented by every simulated hardware block,
//! a generic [`Simulator`] engine that ticks a set of boxed components, and
//! small statistics helpers ([`stats::Counter`], [`stats::Histogram`]).
//!
//! # Design
//!
//! The kernel is intentionally *cycle-driven*, not event-driven: every
//! component is ticked once per simulated clock cycle in a fixed order.
//! This mirrors the bit- and cycle-true SystemC simulation style of the
//! MPARM platform that the reproduced paper (Mahadevan et al., DATE 2005)
//! is built on, and it is what makes the paper's headline claim
//! reproducible: replacing an instruction-set-simulator master by a tiny
//! traffic-generator master speeds the simulation up because the TG does
//! far less work *per cycle*, not because the kernel warps time.
//!
//! Determinism is guaranteed by two rules:
//!
//! 1. components are always ticked in the order they were added, and
//! 2. inter-component communication goes through handshaked channels
//!    (see `ntg-ocp`) whose values only become visible one cycle after
//!    they were produced, so intra-cycle tick order cannot leak.
//!
//! # Example
//!
//! ```
//! use ntg_sim::{Component, Simulator, Cycle};
//!
//! struct Counter { n: u64 }
//! impl Component for Counter {
//!     fn name(&self) -> &str { "counter" }
//!     fn tick(&mut self, _now: Cycle, _net: &mut ()) { self.n += 1; }
//! }
//!
//! let mut sim = Simulator::new();
//! sim.add(Box::new(Counter { n: 0 }));
//! sim.run_for(100);
//! assert_eq!(sim.now(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod component;
mod kernel;
pub mod observe;
pub mod parallel;
pub mod sched;
pub mod stats;

pub use clock::{ClockConfig, Nanos};
pub use component::{Activity, Component};
pub use kernel::{RunOutcome, Simulator};
pub use observe::{Contention, LinkMetrics, Observer, WindowSeries};
pub use parallel::{SpinBarrier, StatusSlot};
pub use sched::{active_scheduling_enabled, ActiveSet, WakeEvents, WakeWheel};

/// Whether event-horizon cycle skipping is enabled for this process.
///
/// Skipping is on by default. Setting the `NTG_NO_SKIP` environment
/// variable to anything other than `""` or `"0"` disables it, forcing the
/// plain tick-per-cycle loop — the escape hatch for bisecting a suspected
/// skip regression. Results are bit-identical either way; only host wall
/// time changes.
pub fn cycle_skipping_enabled() -> bool {
    match std::env::var_os("NTG_NO_SKIP") {
        None => true,
        Some(v) => v.is_empty() || v == "0",
    }
}

/// A simulated clock-cycle index.
///
/// Cycle 0 is the first cycle ever executed; all timestamps in the
/// simulator are expressed in cycles and converted to nanoseconds only at
/// the trace-file boundary (see [`ClockConfig`]).
pub type Cycle = u64;
