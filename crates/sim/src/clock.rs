//! Clock-period bookkeeping and cycle/nanosecond conversion.

use crate::Cycle;

/// A timestamp in nanoseconds of simulated time.
pub type Nanos = u64;

/// Clock configuration shared by every component of a platform.
///
/// The reproduced paper runs all cores and traffic generators off the same
/// clock with a 5 ns period ("We assume each TG cycle to take 5ns, the same
/// as the IP core for which the trace is collected", §5); trace files store
/// nanosecond timestamps while the simulator internally counts cycles.
///
/// # Example
///
/// ```
/// use ntg_sim::ClockConfig;
///
/// let clk = ClockConfig::default(); // 5 ns, as in the paper
/// assert_eq!(clk.cycles_to_ns(11), 55);
/// assert_eq!(clk.ns_to_cycles(55), 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockConfig {
    period_ns: u64,
}

impl ClockConfig {
    /// Creates a clock with the given period in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `period_ns` is zero.
    pub fn new(period_ns: u64) -> Self {
        assert!(period_ns > 0, "clock period must be non-zero");
        Self { period_ns }
    }

    /// The clock period in nanoseconds.
    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }

    /// Converts a cycle count to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: Cycle) -> Nanos {
        cycles * self.period_ns
    }

    /// Converts a nanosecond timestamp to cycles, rounding down.
    ///
    /// Timestamps produced by [`ClockConfig::cycles_to_ns`] always convert
    /// back exactly; foreign timestamps that fall between clock edges are
    /// attributed to the edge before them.
    pub fn ns_to_cycles(&self, ns: Nanos) -> Cycle {
        ns / self.period_ns
    }
}

impl Default for ClockConfig {
    /// The paper's 5 ns (200 MHz) clock.
    fn default() -> Self {
        Self::new(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        assert_eq!(ClockConfig::default().period_ns(), 5);
    }

    #[test]
    fn round_trip_is_exact_on_edges() {
        let clk = ClockConfig::new(7);
        for c in [0u64, 1, 11, 1_000_000] {
            assert_eq!(clk.ns_to_cycles(clk.cycles_to_ns(c)), c);
        }
    }

    #[test]
    fn off_edge_timestamps_round_down() {
        let clk = ClockConfig::new(5);
        assert_eq!(clk.ns_to_cycles(54), 10);
        assert_eq!(clk.ns_to_cycles(55), 11);
        assert_eq!(clk.ns_to_cycles(56), 11);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_rejected() {
        let _ = ClockConfig::new(0);
    }
}
