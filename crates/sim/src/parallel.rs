//! Primitives for partition-parallel simulation.
//!
//! A partitioned run splits one platform's component graph across worker
//! threads and advances every partition in cycle lockstep: all workers
//! execute the same cycle, separated by spin barriers, with
//! cross-partition traffic handed over between barrier-delimited phases.
//! The types here are the kernel-level building blocks that scheduler
//! (`ntg-platform`) builds on:
//!
//! - [`SpinBarrier`] — a reusable sense-reversing barrier. Partition
//!   workers synchronise a handful of times per simulated cycle, so a
//!   parking barrier (mutex + condvar) would dominate the cycle cost;
//!   spinning keeps a barrier crossing in the ~100ns range on idle-free
//!   workers while counting the spins it burns as a contention signal.
//! - [`StatusSlot`] — the one-value mailbox each worker publishes its
//!   local quiesce flag and [`Activity`] wake hint through, so the
//!   coordinating thread can make the *global* run-loop decision (stop,
//!   skip, or tick) that the serial engine makes from a full scan.
//! - [`combine_hints`]/[`encode_activity`] — the fold that makes the
//!   global horizon of per-partition hints equal the serial engine's
//!   single-scan horizon, which is what keeps partitioned runs
//!   bit-identical to serial ones.
//!
//! Everything here is safe code (`ntg-sim` forbids `unsafe`): plain
//! atomics plus `std::hint::spin_loop`.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::Activity;

/// A reusable sense-reversing spin barrier.
///
/// All `participants` threads must call [`SpinBarrier::wait`] the same
/// number of times; each call blocks (spinning) until every participant
/// has arrived, then all are released together. A release at barrier
/// crossing *n* happens-before every return from crossing *n*, so plain
/// relaxed data written before a `wait` may be read relaxed after it.
///
/// The barrier keeps a relaxed count of spin iterations burned while
/// waiting — the "barrier stall" signal the partition scheduler surfaces
/// in benchmark output (a measure of partition imbalance, deliberately
/// excluded from all deterministic results).
#[derive(Debug)]
pub struct SpinBarrier {
    participants: usize,
    spin_burst: u32,
    arrived: AtomicUsize,
    generation: AtomicU64,
    stalls: AtomicU64,
    waits: AtomicU64,
}

/// Spin iterations a waiter burns before falling back to `yield_now`
/// when every participant can hold its own core.
const DEFAULT_SPIN_BURST: u32 = 128;

impl SpinBarrier {
    /// Creates a barrier for `participants` threads, probing the host:
    /// when `participants` exceeds [`std::thread::available_parallelism`]
    /// the barrier starts in immediate-yield mode (spin burst 0), because
    /// at least one participant is necessarily descheduled at every
    /// crossing and spinning at the gate only steals the timeslice it
    /// needs to arrive.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    pub fn new(participants: usize) -> Self {
        let oversubscribed =
            std::thread::available_parallelism().is_ok_and(|host| participants > host.get());
        Self::with_spin_burst(
            participants,
            if oversubscribed {
                0
            } else {
                DEFAULT_SPIN_BURST
            },
        )
    }

    /// Creates a barrier with an explicit spin burst (0 = always yield),
    /// bypassing the host-parallelism probe of [`SpinBarrier::new`].
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    pub fn with_spin_burst(participants: usize, spin_burst: u32) -> Self {
        assert!(participants > 0, "a barrier needs at least one participant");
        Self {
            participants,
            spin_burst,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            waits: AtomicU64::new(0),
        }
    }

    /// The number of threads that must arrive to release a crossing.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// The configured spin burst; 0 means every wait yields immediately
    /// (the oversubscribed-host mode).
    pub fn spin_burst(&self) -> u32 {
        self.spin_burst
    }

    /// Whether this barrier runs in immediate-yield mode — set at
    /// construction when the participant count exceeds the host's
    /// available parallelism.
    pub fn immediate_yield(&self) -> bool {
        self.spin_burst == 0
    }

    /// Blocks until all participants have arrived at this crossing.
    ///
    /// Waiters spin a short bounded burst (the fast path when every
    /// worker has its own core and arrivals are microseconds apart),
    /// then fall back to `yield_now` so an oversubscribed host — more
    /// workers than cores — degrades to scheduler-paced progress
    /// instead of burning whole timeslices spinning at a gate the
    /// missing participant cannot reach until it gets the CPU.
    pub fn wait(&self) {
        let spin_burst = self.spin_burst;
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.participants {
            // Last arrival: reset the count for the next crossing, then
            // open the gate. The reset is ordered before the release
            // store, so re-entrant waiters always see a zeroed count.
            self.waits.fetch_add(1, Ordering::Relaxed);
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins: u64 = 0;
            while self.generation.load(Ordering::Acquire) == generation {
                if spins < u64::from(spin_burst) {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
                spins += 1;
            }
            if spins > 0 {
                self.stalls.fetch_add(spins, Ordering::Relaxed);
            }
        }
    }

    /// Total spin iterations burned by waiting participants so far.
    ///
    /// A host-timing artifact (scheduling dependent, never
    /// deterministic); read it only for diagnostics after the workers
    /// have joined.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// The number of completed barrier crossings.
    pub fn crossings(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }
}

/// `Busy` encoded for a [`StatusSlot`] (any hint decoding to 0).
const HINT_BUSY: u64 = 0;
/// `Drained` encoded for a [`StatusSlot`].
const HINT_DRAINED: u64 = u64::MAX;

/// Packs an [`Activity`] hint into one `u64` for atomic publication.
///
/// `IdleUntil(c)` maps to `c + 1` (saturating), so `Busy` and `Drained`
/// get the two extreme encodings and the min-fold over encoded wake
/// cycles stays order-preserving. `IdleUntil(Cycle::MAX)` (a passive
/// wait, [`Activity::waiting()`]) collapses onto the `Drained` encoding;
/// the two are interchangeable inside a horizon fold — neither bounds it.
pub fn encode_activity(activity: Activity) -> u64 {
    match activity {
        Activity::Busy => HINT_BUSY,
        Activity::IdleUntil(c) => c.saturating_add(1),
        Activity::Drained => HINT_DRAINED,
    }
}

/// Unpacks an [`encode_activity`] value.
pub fn decode_activity(bits: u64) -> Activity {
    match bits {
        HINT_BUSY => Activity::Busy,
        HINT_DRAINED => Activity::Drained,
        wake => Activity::IdleUntil(wake - 1),
    }
}

/// Folds two wake hints into the hint of the union of both component
/// sets: `Busy` dominates, `Drained` is the identity, and two wake
/// cycles keep the earlier one. Associative and commutative, so a
/// partitioned horizon — each worker folding its own components, the
/// coordinator folding the per-worker results — equals the serial
/// engine's single fold over all components in any order.
pub fn combine_hints(a: Activity, b: Activity) -> Activity {
    match (a, b) {
        (Activity::Busy, _) | (_, Activity::Busy) => Activity::Busy,
        (Activity::Drained, other) | (other, Activity::Drained) => other,
        (Activity::IdleUntil(x), Activity::IdleUntil(y)) => Activity::IdleUntil(x.min(y)),
    }
}

/// The per-worker mailbox of a partitioned run.
///
/// After each lockstep round a worker publishes whether its partition is
/// locally quiescent and (on horizon-poll rounds) its local wake hint;
/// the coordinating thread reads every slot after the round's closing
/// barrier and derives the global decision. Writes and reads are relaxed
/// — the barrier crossing between them provides the ordering.
#[derive(Debug)]
pub struct StatusSlot {
    quiesced: AtomicBool,
    hint: AtomicU64,
}

impl Default for StatusSlot {
    fn default() -> Self {
        Self::new()
    }
}

impl StatusSlot {
    /// A fresh slot reporting "not quiesced, busy".
    pub fn new() -> Self {
        Self {
            quiesced: AtomicBool::new(false),
            hint: AtomicU64::new(HINT_BUSY),
        }
    }

    /// Publishes this round's local status.
    pub fn publish(&self, quiesced: bool, hint: Activity) {
        self.quiesced.store(quiesced, Ordering::Relaxed);
        self.hint.store(encode_activity(hint), Ordering::Relaxed);
    }

    /// The last published quiesce flag.
    pub fn quiesced(&self) -> bool {
        self.quiesced.load(Ordering::Relaxed)
    }

    /// The last published wake hint.
    pub fn hint(&self) -> Activity {
        decode_activity(self.hint.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as SharedCounter;

    #[test]
    fn barrier_releases_all_participants_each_crossing() {
        let barrier = SpinBarrier::new(4);
        let counter = SharedCounter::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for round in 0..100u64 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Every participant observes all arrivals of the
                        // finished round before anyone starts the next.
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(seen >= (round + 1) * 4, "round {round} saw {seen}");
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 400);
        assert_eq!(barrier.crossings(), 200);
    }

    #[test]
    fn single_participant_barrier_never_blocks() {
        let barrier = SpinBarrier::new(1);
        for _ in 0..10 {
            barrier.wait();
        }
        assert_eq!(barrier.stalls(), 0);
        assert_eq!(barrier.crossings(), 10);
    }

    #[test]
    fn oversubscribed_barrier_yields_immediately() {
        // An explicit burst of 0 is the immediate-yield mode `new`
        // selects when participants exceed host parallelism.
        let barrier = SpinBarrier::with_spin_burst(2, 0);
        assert!(barrier.immediate_yield());
        assert_eq!(barrier.spin_burst(), 0);
        let counter = SharedCounter::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..50u64 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(barrier.crossings(), 50);

        // A barrier never larger than the host keeps the spinning fast
        // path; one the host cannot co-schedule starts in yield mode.
        let host = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert!(!SpinBarrier::new(1).immediate_yield());
        assert!(SpinBarrier::new(host + 1).immediate_yield());
    }

    #[test]
    fn activity_encoding_round_trips() {
        for a in [
            Activity::Busy,
            Activity::Drained,
            Activity::IdleUntil(0),
            Activity::IdleUntil(1),
            Activity::IdleUntil(123_456),
        ] {
            assert_eq!(decode_activity(encode_activity(a)), a);
        }
        // The unbounded passive wait folds onto Drained — equivalent
        // inside any horizon computation.
        assert_eq!(
            decode_activity(encode_activity(Activity::waiting())),
            Activity::Drained
        );
    }

    #[test]
    fn combine_matches_serial_horizon_fold() {
        use Activity::*;
        assert_eq!(combine_hints(Busy, Drained), Busy);
        assert_eq!(combine_hints(IdleUntil(5), Busy), Busy);
        assert_eq!(combine_hints(Drained, IdleUntil(9)), IdleUntil(9));
        assert_eq!(combine_hints(IdleUntil(3), IdleUntil(9)), IdleUntil(3));
        assert_eq!(combine_hints(Drained, Drained), Drained);
        // Associativity spot check: fold order must not matter.
        let items = [IdleUntil(7), Drained, IdleUntil(4), Busy];
        let left = items.iter().copied().fold(Drained, combine_hints);
        let right = items.iter().rev().copied().fold(Drained, combine_hints);
        assert_eq!(left, right);
    }

    #[test]
    fn status_slot_defaults_conservative() {
        let slot = StatusSlot::new();
        assert!(!slot.quiesced());
        assert_eq!(slot.hint(), Activity::Busy);
        slot.publish(true, Activity::IdleUntil(42));
        assert!(slot.quiesced());
        assert_eq!(slot.hint(), Activity::IdleUntil(42));
    }
}
