//! The generic cycle-driven simulation engine.

use crate::{Component, Cycle};

/// Why a [`Simulator`] run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunOutcome {
    /// Every component reported [`Component::is_idle`] before the cycle
    /// limit was reached.
    Idle,
    /// The caller-supplied predicate became true.
    Predicate,
    /// The cycle limit was exhausted first.
    CycleLimit,
}

/// A deterministic cycle-driven simulation engine.
///
/// Owns a set of boxed [`Component`]s and ticks each of them once per
/// cycle, in registration order. Platform-level harnesses that know their
/// components' concrete types (such as `ntg-platform`) may instead run
/// their own tick loop; this engine is the general-purpose entry point for
/// user-assembled systems.
///
/// # Example
///
/// ```
/// use ntg_sim::{Component, Cycle, RunOutcome, Simulator};
///
/// struct Pulse { remaining: u64 }
/// impl Component for Pulse {
///     fn name(&self) -> &str { "pulse" }
///     fn tick(&mut self, _now: Cycle) {
///         self.remaining = self.remaining.saturating_sub(1);
///     }
///     fn is_idle(&self) -> bool { self.remaining == 0 }
/// }
///
/// let mut sim = Simulator::new();
/// sim.add(Box::new(Pulse { remaining: 3 }));
/// assert_eq!(sim.run_until_idle(100), RunOutcome::Idle);
/// assert_eq!(sim.now(), 3);
/// ```
#[derive(Default)]
pub struct Simulator {
    components: Vec<Box<dyn Component>>,
    now: Cycle,
}

impl Simulator {
    /// Creates an empty simulator at cycle zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a component. Components are ticked in registration order.
    ///
    /// Returns the component's index, which can be used with
    /// [`Simulator::component`].
    pub fn add(&mut self, component: Box<dyn Component>) -> usize {
        self.components.push(component);
        self.components.len() - 1
    }

    /// The index of the next cycle to execute (equivalently: how many
    /// cycles have fully executed so far).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The number of registered components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether no components are registered.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Borrows the component registered with index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn component(&self, idx: usize) -> &dyn Component {
        self.components[idx].as_ref()
    }

    /// Executes exactly one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        for c in &mut self.components {
            c.tick(now);
        }
        self.now += 1;
    }

    /// Executes exactly `cycles` cycles.
    pub fn run_for(&mut self, cycles: Cycle) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until every component reports idle, or until `max_cycles`
    /// further cycles have executed.
    ///
    /// Idleness is checked *between* cycles, so at least the in-flight
    /// cycle always completes.
    pub fn run_until_idle(&mut self, max_cycles: Cycle) -> RunOutcome {
        self.run_until(max_cycles, |_| false)
    }

    /// Runs until `stop` returns true (checked between cycles), every
    /// component is idle, or `max_cycles` further cycles have executed —
    /// whichever comes first.
    pub fn run_until(
        &mut self,
        max_cycles: Cycle,
        mut stop: impl FnMut(&Simulator) -> bool,
    ) -> RunOutcome {
        for _ in 0..max_cycles {
            if stop(self) {
                return RunOutcome::Predicate;
            }
            if self.all_idle() {
                return RunOutcome::Idle;
            }
            self.step();
        }
        if stop(self) {
            RunOutcome::Predicate
        } else if self.all_idle() {
            RunOutcome::Idle
        } else {
            RunOutcome::CycleLimit
        }
    }

    fn all_idle(&self) -> bool {
        !self.components.is_empty() && self.components.iter().all(|c| c.is_idle())
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field(
                "components",
                &self.components.iter().map(|c| c.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    struct Recorder {
        id: usize,
        order: Rc<Cell<u64>>,
        seen: Vec<(Cycle, u64)>,
        idle_after: Cycle,
    }

    impl Component for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }
        fn tick(&mut self, now: Cycle) {
            let seq = self.order.get();
            self.order.set(seq + 1);
            self.seen.push((now, seq));
            let _ = self.id;
        }
        fn is_idle(&self) -> bool {
            self.seen.len() as Cycle >= self.idle_after
        }
    }

    #[test]
    fn ticks_in_registration_order() {
        let order = Rc::new(Cell::new(0));
        let mut sim = Simulator::new();
        for id in 0..3 {
            sim.add(Box::new(Recorder {
                id,
                order: order.clone(),
                seen: Vec::new(),
                idle_after: u64::MAX,
            }));
        }
        sim.run_for(2);
        // Within each cycle the global sequence numbers must follow the
        // registration order: component 0 first, then 1, then 2.
        assert_eq!(order.get(), 6);
        assert_eq!(sim.now(), 2);
    }

    #[test]
    fn run_until_idle_stops_early() {
        let order = Rc::new(Cell::new(0));
        let mut sim = Simulator::new();
        sim.add(Box::new(Recorder {
            id: 0,
            order,
            seen: Vec::new(),
            idle_after: 5,
        }));
        assert_eq!(sim.run_until_idle(1_000), RunOutcome::Idle);
        assert_eq!(sim.now(), 5);
    }

    #[test]
    fn run_until_respects_cycle_limit() {
        let order = Rc::new(Cell::new(0));
        let mut sim = Simulator::new();
        sim.add(Box::new(Recorder {
            id: 0,
            order,
            seen: Vec::new(),
            idle_after: u64::MAX,
        }));
        assert_eq!(sim.run_until_idle(10), RunOutcome::CycleLimit);
        assert_eq!(sim.now(), 10);
    }

    #[test]
    fn predicate_stops_between_cycles() {
        let order = Rc::new(Cell::new(0));
        let mut sim = Simulator::new();
        sim.add(Box::new(Recorder {
            id: 0,
            order,
            seen: Vec::new(),
            idle_after: u64::MAX,
        }));
        let outcome = sim.run_until(100, |s| s.now() == 7);
        assert_eq!(outcome, RunOutcome::Predicate);
        assert_eq!(sim.now(), 7);
    }

    #[test]
    fn empty_simulator_never_reports_idle() {
        let mut sim = Simulator::new();
        assert!(sim.is_empty());
        assert_eq!(sim.run_until_idle(5), RunOutcome::CycleLimit);
        assert_eq!(sim.now(), 5);
    }
}
