//! The generic cycle-driven simulation engine.

use crate::observe::Observer;
use crate::{Activity, Component, Cycle};

/// Why a [`Simulator`] run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunOutcome {
    /// Every component reported [`Component::is_idle`] before the cycle
    /// limit was reached.
    Idle,
    /// The caller-supplied predicate became true.
    Predicate,
    /// The cycle limit was exhausted first.
    CycleLimit,
}

/// A deterministic cycle-driven simulation engine.
///
/// Owns a set of boxed [`Component`]s plus the shared context `C` they
/// communicate through (the OCP link arena for `ntg` systems; `()` for
/// pure components), and ticks each component once per cycle in
/// registration order, lending the context to every callback.
/// Platform-level harnesses that know their components' concrete types
/// (such as `ntg-platform`) may instead run their own tick loop; this
/// engine is the general-purpose entry point for user-assembled systems.
///
/// # Example
///
/// ```
/// use ntg_sim::{Component, Cycle, RunOutcome, Simulator};
///
/// struct Pulse { remaining: u64 }
/// impl Component for Pulse {
///     fn name(&self) -> &str { "pulse" }
///     fn tick(&mut self, _now: Cycle, _net: &mut ()) {
///         self.remaining = self.remaining.saturating_sub(1);
///     }
///     fn is_idle(&self, _net: &()) -> bool { self.remaining == 0 }
/// }
///
/// let mut sim = Simulator::new();
/// sim.add(Box::new(Pulse { remaining: 3 }));
/// assert_eq!(sim.run_until_idle(100), RunOutcome::Idle);
/// assert_eq!(sim.now(), 3);
/// ```
pub struct Simulator<C = ()> {
    components: Vec<Box<dyn Component<C>>>,
    ctx: C,
    now: Cycle,
    skipping: bool,
    skipped_cycles: Cycle,
    ticked_cycles: Cycle,
    visited_component_cycles: u64,
    /// Wake-token → component-index routing table for
    /// [`Simulator::run_active_until`]; `u32::MAX` marks unrouted tokens.
    watches: Vec<u32>,
    observer: Option<Box<dyn Observer>>,
}

impl<C: Default> Default for Simulator<C> {
    fn default() -> Self {
        Self::with_ctx(C::default())
    }
}

impl<C: Default> Simulator<C> {
    /// Creates an empty simulator at cycle zero with a default context.
    ///
    /// Event-horizon cycle skipping is enabled unless the `NTG_NO_SKIP`
    /// environment variable disables it (see
    /// [`cycle_skipping_enabled`](crate::cycle_skipping_enabled)); use
    /// [`Simulator::set_cycle_skipping`] to override programmatically.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<C> Simulator<C> {
    /// Creates an empty simulator at cycle zero owning the given shared
    /// context (for OCP systems, a pre-wired link arena).
    pub fn with_ctx(ctx: C) -> Self {
        Self {
            components: Vec::new(),
            ctx,
            now: 0,
            skipping: crate::cycle_skipping_enabled(),
            skipped_cycles: 0,
            ticked_cycles: 0,
            visited_component_cycles: 0,
            watches: Vec::new(),
            observer: None,
        }
    }

    /// Borrows the shared context.
    pub fn ctx(&self) -> &C {
        &self.ctx
    }

    /// Mutably borrows the shared context (e.g. to wire new links before
    /// the run starts).
    pub fn ctx_mut(&mut self) -> &mut C {
        &mut self.ctx
    }

    /// Consumes the engine and returns the shared context.
    pub fn into_ctx(self) -> C {
        self.ctx
    }

    /// Enables or disables event-horizon cycle skipping for this engine,
    /// overriding the `NTG_NO_SKIP` environment default.
    ///
    /// Skipping never changes simulation results — components' wake hints
    /// promise the jumped ticks were pure bookkeeping, replicated exactly
    /// by [`Component::skip`] — it only changes how many host instructions
    /// a quiescent stretch costs.
    pub fn set_cycle_skipping(&mut self, on: bool) {
        self.skipping = on;
    }

    /// Installs (or, with `None`, removes) an [`Observer`] that is told
    /// about every executed cycle and every horizon jump.
    ///
    /// Without an observer the run loops pay a single branch per visited
    /// cycle; observation is strictly opt-in and never changes
    /// simulation results.
    pub fn set_observer(&mut self, observer: Option<Box<dyn Observer>>) {
        self.observer = observer;
    }

    /// Removes and returns the installed observer, if any — the way to
    /// read back metrics it accumulated.
    pub fn take_observer(&mut self) -> Option<Box<dyn Observer>> {
        self.observer.take()
    }

    /// Cycles fast-forwarded by horizon jumps instead of being ticked.
    pub fn skipped_cycles(&self) -> Cycle {
        self.skipped_cycles
    }

    /// Cycles executed tick by tick.
    pub fn ticked_cycles(&self) -> Cycle {
        self.ticked_cycles
    }

    /// Component-cycles actually executed: the dense loops count every
    /// component per ticked cycle, [`Simulator::run_active_until`]
    /// counts only the components it woke. The sparse-visit numerator
    /// (divide by `len() × now()` for the visit ratio).
    pub fn visited_component_cycles(&self) -> u64 {
        self.visited_component_cycles
    }

    /// Routes wake token `token` to the component at `idx`: whenever the
    /// context logs the token during a cycle of an active-scheduled run
    /// (see [`Simulator::run_active_until`]), that component is
    /// scheduled for the following cycle. Tokens without a watch are
    /// discarded; watching the same token again re-routes it.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a registered component index.
    pub fn watch(&mut self, token: u32, idx: usize) {
        assert!(idx < self.components.len(), "watch on unknown component");
        if token as usize >= self.watches.len() {
            self.watches.resize(token as usize + 1, u32::MAX);
        }
        self.watches[token as usize] = idx as u32;
    }

    /// Registers a component. Components are ticked in registration order.
    ///
    /// Returns the component's index, which can be used with
    /// [`Simulator::component`].
    pub fn add(&mut self, component: Box<dyn Component<C>>) -> usize {
        self.components.push(component);
        self.components.len() - 1
    }

    /// The index of the next cycle to execute (equivalently: how many
    /// cycles have fully executed so far).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The number of registered components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether no components are registered.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Borrows the component registered with index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn component(&self, idx: usize) -> &dyn Component<C> {
        self.components[idx].as_ref()
    }

    /// Executes exactly one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        for c in &mut self.components {
            c.tick(now, &mut self.ctx);
        }
        self.now += 1;
        self.ticked_cycles += 1;
        self.visited_component_cycles += self.components.len() as u64;
        if let Some(obs) = &mut self.observer {
            obs.on_tick(now);
        }
    }

    /// Executes exactly `cycles` cycles.
    pub fn run_for(&mut self, cycles: Cycle) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until every component reports idle, or until `max_cycles`
    /// further cycles have executed.
    ///
    /// Idleness is checked *between* cycles, so at least the in-flight
    /// cycle always completes.
    pub fn run_until_idle(&mut self, max_cycles: Cycle) -> RunOutcome {
        self.run_until(max_cycles, |_| false)
    }

    /// Runs until `stop` returns true (checked between cycles), every
    /// component is idle, or `max_cycles` further cycles have executed —
    /// whichever comes first.
    ///
    /// # Cycle skipping
    ///
    /// When every component reports a non-[`Busy`](Activity::Busy) wake
    /// hint (see [`Component::next_activity`]), the engine jumps `now`
    /// straight to the earliest wake cycle — the *event horizon* — after
    /// giving every component a [`Component::skip`] callback. Because
    /// hints promise the jumped ticks were pure bookkeeping, outcomes and
    /// cycle counts are bit-identical with skipping on or off. The one
    /// caveat: `stop` is evaluated only at cycles the engine actually
    /// visits (jump targets included). Predicates over component state are
    /// unaffected — jumps never cross a cycle where observable state
    /// changes — but a predicate over raw `now()` arithmetic may first
    /// hold mid-jump and only be seen at the following visited cycle.
    pub fn run_until(
        &mut self,
        max_cycles: Cycle,
        mut stop: impl FnMut(&Simulator<C>) -> bool,
    ) -> RunOutcome {
        let end = self.now.saturating_add(max_cycles);
        while self.now < end {
            if stop(self) {
                return RunOutcome::Predicate;
            }
            if self.all_idle() {
                return RunOutcome::Idle;
            }
            match self.horizon(end) {
                Some(next) => {
                    let now = self.now;
                    for c in &mut self.components {
                        c.skip(now, next, &mut self.ctx);
                    }
                    self.skipped_cycles += next - now;
                    self.now = next;
                    if let Some(obs) = &mut self.observer {
                        obs.on_skip(now, next);
                    }
                }
                None => self.step(),
            }
        }
        if stop(self) {
            RunOutcome::Predicate
        } else if self.all_idle() {
            RunOutcome::Idle
        } else {
            RunOutcome::CycleLimit
        }
    }

    /// The earliest cycle any component needs a real tick, clamped to
    /// `end`, or `None` if some component is busy (or skipping is off) and
    /// the engine must execute the coming cycle normally.
    fn horizon(&self, end: Cycle) -> Option<Cycle> {
        if !self.skipping {
            return None;
        }
        let mut h = end;
        for c in &self.components {
            match c.next_activity(self.now, &self.ctx) {
                Activity::Busy => return None,
                Activity::IdleUntil(w) => h = h.min(w),
                Activity::Drained => {}
            }
        }
        (h > self.now).then_some(h)
    }

    fn all_idle(&self) -> bool {
        !self.components.is_empty() && self.components.iter().all(|c| c.is_idle(&self.ctx))
    }
}

impl<C: crate::WakeEvents> Simulator<C> {
    /// [`Simulator::run_active_until`] with no predicate.
    pub fn run_active_until_idle(&mut self, max_cycles: Cycle) -> RunOutcome {
        self.run_active_until(max_cycles, |_| false)
    }

    /// Like [`Simulator::run_until`], but scheduled O(active): instead
    /// of ticking every component each visited cycle, an [`ActiveSet`]
    /// wake wheel tracks each component's own hint and only woken
    /// components run; everything a component slept through is settled
    /// by one [`Component::skip`] catch-up right before its next tick.
    /// Results are bit-identical to the dense loops for components that
    /// honour the hint contract.
    ///
    /// Two extra obligations beyond [`Simulator::run_until`]'s:
    ///
    /// - cross-component touches must be observable: the shared context
    ///   logs a wake token per touch ([`WakeEvents`]) and every token
    ///   whose addressee is a registered component has a
    ///   [`Simulator::watch`] route. A touch wakes its addressee for
    ///   the following cycle (the engine's write-visibility delay).
    /// - `is_idle` must imply a parked hint ([`Activity::Drained`] or a
    ///   passive wait), so quiescence is decidable from scheduler state
    ///   alone.
    ///
    /// The `stop` predicate runs at visited cycles only (a superset may
    /// be visited compared to the dense engine) and observes lazily
    /// settled state: a sleeping component's fields lag until its next
    /// catch-up, so predicates should depend on `now()` or on awake
    /// components' state.
    ///
    /// [`ActiveSet`]: crate::ActiveSet
    /// [`WakeEvents`]: crate::WakeEvents
    pub fn run_active_until(
        &mut self,
        max_cycles: Cycle,
        mut stop: impl FnMut(&Simulator<C>) -> bool,
    ) -> RunOutcome {
        if !self.skipping {
            // Sparse scheduling rides on the skip contract; without it
            // the dense loop is the only exact engine.
            return self.run_until(max_cycles, stop);
        }
        let end = self.now.saturating_add(max_cycles);
        let n = self.components.len();
        let mut sched = crate::ActiveSet::new(n);
        for i in 0..n {
            let hint = self.components[i].next_activity(self.now, &self.ctx);
            sched.seed(i as u32, hint, self.now);
        }
        let visited_before = sched.visited_component_cycles();
        let mut visit_buf: Vec<u32> = Vec::with_capacity(n);
        let outcome = loop {
            if self.now >= end {
                break if stop(self) {
                    RunOutcome::Predicate
                } else if self.all_idle() {
                    RunOutcome::Idle
                } else {
                    RunOutcome::CycleLimit
                };
            }
            if stop(self) {
                break RunOutcome::Predicate;
            }
            if sched.idle() {
                // Everything sleeps: jump to the earliest wheel wake.
                // With no wake pending nothing will ever run again
                // without external input, so settle and classify —
                // mirroring the dense engine, which would see all-idle
                // (or a horizon at `end`) at this same cycle.
                let Some(wake) = sched.next_wake() else {
                    let now = self.now;
                    let components = &mut self.components;
                    let ctx = &mut self.ctx;
                    sched.drain_catch_ups(now, |id, since| {
                        components[id as usize].skip(since, now, ctx);
                    });
                    if self.all_idle() {
                        break RunOutcome::Idle;
                    }
                    // Passive waiters only: fast-forward to the limit.
                    for c in &mut self.components {
                        c.skip(now, end, &mut self.ctx);
                    }
                    // The spans are settled; nothing for the final
                    // catch-up drain to replay.
                    sched.drain_catch_ups(end, |_, _| {});
                    self.skipped_cycles += end - now;
                    self.now = end;
                    if let Some(obs) = &mut self.observer {
                        obs.on_skip(now, end);
                    }
                    continue;
                };
                let target = wake.min(end);
                if target > self.now {
                    let now = self.now;
                    self.skipped_cycles += target - now;
                    self.now = target;
                    if let Some(obs) = &mut self.observer {
                        obs.on_skip(now, target);
                    }
                }
                sched.advance(self.now);
                continue;
            }
            // Visit cycle: catch up and tick exactly the woken set, in
            // index (= registration) order like the dense loop.
            let now = self.now;
            visit_buf.clear();
            visit_buf.extend_from_slice(sched.visit(now));
            for &id in &visit_buf {
                let i = id as usize;
                if let Some(since) = sched.take_catch_up(id, now) {
                    self.components[i].skip(since, now, &mut self.ctx);
                }
                self.components[i].tick(now, &mut self.ctx);
            }
            let next = now + 1;
            for &id in &visit_buf {
                let hint = self.components[id as usize].next_activity(now, &self.ctx);
                sched.reinsert(id, hint, next);
            }
            // Route this cycle's cross-component touches; they become
            // visible (and the addressee runnable) next cycle.
            let (ctx, watches) = (&mut self.ctx, &self.watches);
            ctx.drain_wakes(&mut |token| {
                if let Some(&idx) = watches.get(token as usize) {
                    if idx != u32::MAX {
                        sched.wake(idx, next);
                    }
                }
            });
            sched.end_cycle(now);
            self.now = next;
            self.ticked_cycles += 1;
            if let Some(obs) = &mut self.observer {
                obs.on_tick(now);
            }
        };
        // Settle every component that is still lagging so callers see
        // the same end state as after a dense run.
        let now = self.now;
        let components = &mut self.components;
        let ctx = &mut self.ctx;
        sched.drain_catch_ups(now, |id, since| {
            components[id as usize].skip(since, now, ctx);
        });
        self.visited_component_cycles += sched.visited_component_cycles() - visited_before;
        outcome
    }
}

impl<C> std::fmt::Debug for Simulator<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field(
                "components",
                &self.components.iter().map(|c| c.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// Ticks through a `Simulator<u64>` whose context is a global
    /// sequence counter — verifying the ctx is lent to every callback.
    struct Recorder {
        seen: Vec<(Cycle, u64)>,
        idle_after: Cycle,
    }

    impl Component<u64> for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }
        fn tick(&mut self, now: Cycle, order: &mut u64) {
            self.seen.push((now, *order));
            *order += 1;
        }
        fn is_idle(&self, _order: &u64) -> bool {
            self.seen.len() as Cycle >= self.idle_after
        }
    }

    #[test]
    fn ticks_in_registration_order() {
        let mut sim: Simulator<u64> = Simulator::new();
        for _ in 0..3 {
            sim.add(Box::new(Recorder {
                seen: Vec::new(),
                idle_after: u64::MAX,
            }));
        }
        sim.run_for(2);
        // Within each cycle the global sequence numbers follow the
        // registration order: component 0 first, then 1, then 2.
        assert_eq!(*sim.ctx(), 6);
        assert_eq!(sim.now(), 2);
    }

    #[test]
    fn run_until_idle_stops_early() {
        let mut sim: Simulator<u64> = Simulator::new();
        sim.add(Box::new(Recorder {
            seen: Vec::new(),
            idle_after: 5,
        }));
        assert_eq!(sim.run_until_idle(1_000), RunOutcome::Idle);
        assert_eq!(sim.now(), 5);
    }

    #[test]
    fn run_until_respects_cycle_limit() {
        let mut sim: Simulator<u64> = Simulator::new();
        sim.add(Box::new(Recorder {
            seen: Vec::new(),
            idle_after: u64::MAX,
        }));
        assert_eq!(sim.run_until_idle(10), RunOutcome::CycleLimit);
        assert_eq!(sim.now(), 10);
    }

    #[test]
    fn predicate_stops_between_cycles() {
        let mut sim: Simulator<u64> = Simulator::new();
        sim.add(Box::new(Recorder {
            seen: Vec::new(),
            idle_after: u64::MAX,
        }));
        let outcome = sim.run_until(100, |s| s.now() == 7);
        assert_eq!(outcome, RunOutcome::Predicate);
        assert_eq!(sim.now(), 7);
    }

    #[test]
    fn empty_simulator_never_reports_idle() {
        let mut sim = Simulator::<()>::new();
        assert!(sim.is_empty());
        assert_eq!(sim.run_until_idle(5), RunOutcome::CycleLimit);
        assert_eq!(sim.now(), 5);
    }

    /// Works for `burst` cycles, sleeps for `gap` cycles, repeats
    /// `rounds` times, then drains. Counts every cycle it observes so
    /// skip equivalence can be asserted on the bookkeeping too. Generic
    /// over the context — a pure component fits any engine.
    struct Sleeper {
        burst: u64,
        gap: u64,
        rounds: u64,
        phase_left: u64,
        working: bool,
        observed: Cycle,
    }

    impl Sleeper {
        fn new(burst: u64, gap: u64, rounds: u64) -> Self {
            Self {
                burst,
                gap,
                rounds,
                phase_left: burst,
                working: true,
                observed: 0,
            }
        }
    }

    impl<C> Component<C> for Sleeper {
        fn name(&self) -> &str {
            "sleeper"
        }
        fn tick(&mut self, _now: Cycle, _net: &mut C) {
            if self.rounds == 0 {
                return;
            }
            self.observed += 1;
            self.phase_left -= 1;
            if self.phase_left == 0 {
                if self.working {
                    self.working = false;
                    self.phase_left = self.gap;
                } else {
                    self.working = true;
                    self.phase_left = self.burst;
                    self.rounds -= 1;
                }
            }
        }
        fn is_idle(&self, _net: &C) -> bool {
            self.rounds == 0
        }
        fn next_activity(&self, now: Cycle, _net: &C) -> Activity {
            if self.rounds == 0 {
                Activity::Drained
            } else if self.working {
                Activity::Busy
            } else {
                Activity::IdleUntil(now + self.phase_left)
            }
        }
        fn skip(&mut self, now: Cycle, next: Cycle, _net: &mut C) {
            if self.rounds == 0 {
                return;
            }
            let n = next - now;
            assert!(!self.working && n <= self.phase_left);
            self.observed += n;
            self.phase_left -= n;
            if self.phase_left == 0 {
                self.working = true;
                self.phase_left = self.burst;
                self.rounds -= 1;
            }
        }
    }

    fn run_sleepers(skipping: bool) -> (Cycle, Cycle, RunOutcome) {
        let mut sim = Simulator::<()>::new();
        sim.set_cycle_skipping(skipping);
        sim.add(Box::new(Sleeper::new(3, 40, 4)));
        sim.add(Box::new(Sleeper::new(5, 17, 6)));
        let outcome = sim.run_until_idle(10_000);
        (sim.now(), sim.skipped_cycles(), outcome)
    }

    #[test]
    fn skipping_is_bit_identical_to_plain_ticking() {
        let (now_on, skipped_on, out_on) = run_sleepers(true);
        let (now_off, skipped_off, out_off) = run_sleepers(false);
        assert_eq!(now_on, now_off);
        assert_eq!(out_on, out_off);
        assert_eq!(skipped_off, 0);
        assert!(skipped_on > 0, "overlapping idle windows must be skipped");
    }

    #[test]
    fn skip_counters_partition_the_run() {
        let mut sim = Simulator::<()>::new();
        sim.set_cycle_skipping(true);
        sim.add(Box::new(Sleeper::new(2, 30, 3)));
        sim.run_until_idle(1_000);
        assert_eq!(sim.skipped_cycles() + sim.ticked_cycles(), sim.now());
    }

    /// Counts cycles by attribution through a shared handle so the totals
    /// survive the observer's ownership by the engine.
    struct CycleLedger(Arc<Mutex<(u64, u64)>>);

    impl crate::observe::Observer for CycleLedger {
        fn on_tick(&mut self, _now: Cycle) {
            self.0.lock().unwrap().0 += 1;
        }
        fn on_skip(&mut self, from: Cycle, next: Cycle) {
            self.0.lock().unwrap().1 += next - from;
        }
    }

    #[test]
    fn observer_sees_every_visited_and_skipped_cycle() {
        let mut sim = Simulator::<()>::new();
        sim.set_cycle_skipping(true);
        sim.add(Box::new(Sleeper::new(3, 40, 4)));
        let ledger = Arc::new(Mutex::new((0u64, 0u64)));
        sim.set_observer(Some(Box::new(CycleLedger(ledger.clone()))));
        sim.run_until_idle(10_000);
        assert!(sim.take_observer().is_some(), "observer stays installed");
        let (ticked, skipped) = *ledger.lock().unwrap();
        assert_eq!(ticked, sim.ticked_cycles());
        assert_eq!(skipped, sim.skipped_cycles());
        assert!(skipped > 0, "idle gaps must be jumped");
        assert_eq!(ticked + skipped, sim.now());
    }

    fn run_sleepers_active(skipping: bool) -> (Cycle, Cycle, RunOutcome, u64) {
        let mut sim = Simulator::<()>::new();
        sim.set_cycle_skipping(skipping);
        sim.add(Box::new(Sleeper::new(3, 40, 4)));
        sim.add(Box::new(Sleeper::new(5, 17, 6)));
        let outcome = sim.run_active_until_idle(10_000);
        (
            sim.now(),
            sim.skipped_cycles(),
            outcome,
            sim.visited_component_cycles(),
        )
    }

    #[test]
    fn active_scheduling_matches_dense_runs() {
        let (dense_now, _, dense_out) = run_sleepers(false);
        let (now, skipped, out, visited) = run_sleepers_active(true);
        assert_eq!(now, dense_now);
        assert_eq!(out, dense_out);
        assert!(skipped > 0, "overlapping idle windows must be skipped");
        // The sleepers' bursts overlap only partially, so the woken sets
        // are strictly smaller than ticking both every visited cycle.
        let mut ticked = Simulator::<()>::new();
        ticked.set_cycle_skipping(true);
        ticked.add(Box::new(Sleeper::new(3, 40, 4)));
        ticked.add(Box::new(Sleeper::new(5, 17, 6)));
        ticked.run_until_idle(10_000);
        assert!(
            visited < ticked.visited_component_cycles(),
            "sparse visits {visited} must undercut dense {}",
            ticked.visited_component_cycles()
        );
        // With skipping off the active engine degrades to the dense loop.
        let (now_off, skipped_off, out_off, _) = run_sleepers_active(false);
        assert_eq!((now_off, skipped_off, out_off), (dense_now, 0, dense_out));
    }

    /// A shared mailbox with next-cycle visibility and a wake-token log
    /// — a miniature of the OCP link arena's contract.
    #[derive(Default)]
    struct Channel {
        pending_at: Option<Cycle>,
        tokens: Vec<u32>,
    }

    impl crate::WakeEvents for Channel {
        fn drain_wakes(&mut self, wake: &mut dyn FnMut(u32)) {
            for t in self.tokens.drain(..) {
                wake(t);
            }
        }
    }

    const ECHO_TOKEN: u32 = 7;

    /// Sends `count` messages, one every `period` cycles, logging a wake
    /// token per send.
    struct Pinger {
        period: u64,
        count: u64,
        next_send: Cycle,
        sent: u64,
    }

    impl Component<Channel> for Pinger {
        fn name(&self) -> &str {
            "pinger"
        }
        fn tick(&mut self, now: Cycle, ch: &mut Channel) {
            if self.sent < self.count && now == self.next_send {
                ch.pending_at = Some(now + 1);
                ch.tokens.push(ECHO_TOKEN);
                self.sent += 1;
                self.next_send += self.period;
            }
        }
        fn is_idle(&self, _ch: &Channel) -> bool {
            self.sent == self.count
        }
        fn next_activity(&self, _now: Cycle, _ch: &Channel) -> Activity {
            if self.sent == self.count {
                Activity::Drained
            } else {
                Activity::IdleUntil(self.next_send)
            }
        }
    }

    /// Passively waits for messages; records the cycle each one becomes
    /// visible through a shared handle.
    struct Echo(Arc<Mutex<Vec<Cycle>>>);

    impl Component<Channel> for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn tick(&mut self, now: Cycle, ch: &mut Channel) {
            if ch.pending_at.is_some_and(|at| at <= now) {
                ch.pending_at = None;
                self.0.lock().unwrap().push(now);
            }
        }
        fn is_idle(&self, ch: &Channel) -> bool {
            ch.pending_at.is_none()
        }
        fn next_activity(&self, now: Cycle, ch: &Channel) -> Activity {
            match ch.pending_at {
                Some(at) if at <= now => Activity::Busy,
                Some(at) => Activity::IdleUntil(at),
                None => Activity::Drained,
            }
        }
    }

    fn run_ping_echo(active: bool, skipping: bool) -> (Cycle, RunOutcome, Vec<Cycle>) {
        let heard = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulator::<Channel>::new();
        sim.set_cycle_skipping(skipping);
        sim.add(Box::new(Pinger {
            period: 50,
            count: 4,
            next_send: 10,
            sent: 0,
        }));
        let echo = sim.add(Box::new(Echo(heard.clone())));
        let outcome = if active {
            sim.watch(ECHO_TOKEN, echo);
            sim.run_active_until_idle(10_000)
        } else {
            sim.run_until_idle(10_000)
        };
        let heard = heard.lock().unwrap().clone();
        (sim.now(), outcome, heard)
    }

    #[test]
    fn wake_routing_matches_dense_delivery() {
        let dense = run_ping_echo(false, false);
        let skipping = run_ping_echo(false, true);
        let active = run_ping_echo(true, true);
        assert_eq!(dense.2, vec![11, 61, 111, 161]);
        assert_eq!(dense, skipping);
        assert_eq!(dense, active);
    }

    #[test]
    fn busy_component_disables_jumping() {
        let mut sim: Simulator<u64> = Simulator::new();
        sim.set_cycle_skipping(true);
        // Recorder's default next_activity is Busy, so every cycle ticks.
        sim.add(Box::new(Recorder {
            seen: Vec::new(),
            idle_after: u64::MAX,
        }));
        sim.add(Box::new(Sleeper::new(1, 50, 2)));
        assert_eq!(sim.run_until_idle(10), RunOutcome::CycleLimit);
        assert_eq!(sim.skipped_cycles(), 0);
        assert_eq!(sim.ticked_cycles(), 10);
    }
}
