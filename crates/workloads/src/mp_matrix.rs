//! MP matrix: multiprocessor matrix manipulation (Table 2).
//!
//! Weak-scaling workload in the paper's spirit: every processor runs the
//! same matrix job, so total bus load grows with the processor count and
//! the AMBA bus progressively saturates — which is exactly what makes
//! the paper's cumulative execution time *grow* from 2 to 12 processors
//! and its speedup peak around the middle of the sweep.
//!
//! Per core: copy the shared input matrices into private memory
//! (uncached shared reads + write-through private stores, all bus
//! traffic), multiply out of the private copies (cache refills +
//! write-through result stores), perform a semaphore-protected mailbox
//! update after every output row (lock contention → reactive traffic),
//! publish a checksum to the core's own shared slot, and synchronise on
//! a final flag barrier.

use ntg_cpu::isa::{R1, R11, R12, R13, R14, R2, R3, R4, R5, R6, R7, R8, R9};
use ntg_cpu::{Asm, Program};
use ntg_platform::{mem_map, Platform, PlatformBuilder};

use crate::common::{barrier, mutex_acquire, mutex_release};

/// Shared-memory layout (offsets from `SHARED_BASE`).
const CSUM_OFF: u32 = 0x0000; // one word per core
const MAILBOX_OFF: u32 = 0x0080;
const A_OFF: u32 = 0x1000;
const B_OFF: u32 = 0x2000;

/// Private-memory layout (offsets from the core's base).
const A_PRIV: u32 = 0x8000;
const B_PRIV: u32 = 0x9000;
const C_PRIV: u32 = 0xA000;

/// The semaphore protecting the mailbox.
const MAILBOX_SEM: u32 = 0;

fn a_val(i: u32) -> u32 {
    i.wrapping_mul(13).wrapping_add(7)
}

fn b_val(i: u32) -> u32 {
    i.wrapping_mul(5).wrapping_add(11)
}

/// Address of core `c`'s checksum slot.
pub fn checksum_addr(core: usize) -> u32 {
    mem_map::SHARED_BASE + CSUM_OFF + (core as u32) * 4
}

/// Host-side golden model: the checksum every core must produce.
pub fn golden_checksum(n: u32) -> u32 {
    let nn = (n * n) as usize;
    let a: Vec<u32> = (0..nn as u32).map(a_val).collect();
    let b: Vec<u32> = (0..nn as u32).map(b_val).collect();
    let idx = |r: u32, c: u32| (r * n + c) as usize;
    let mut sum: u32 = 0;
    for i in 0..n {
        for j in 0..n {
            let mut acc: u32 = 0;
            for k in 0..n {
                acc = acc.wrapping_add(a[idx(i, k)].wrapping_mul(b[idx(k, j)]));
            }
            sum = sum.wrapping_add(acc);
        }
    }
    sum
}

/// Preloads A and B into shared memory.
pub fn preload(builder: &mut PlatformBuilder, n: u32) {
    let nn = n * n;
    builder.preload_shared(mem_map::SHARED_BASE + A_OFF, (0..nn).map(a_val).collect());
    builder.preload_shared(mem_map::SHARED_BASE + B_OFF, (0..nn).map(b_val).collect());
}

/// Builds the MP matrix program for `core` of `cores`.
///
/// # Panics
///
/// Panics if `n` is zero or the matrices exceed their 4 KiB slots.
pub fn program(core: usize, cores: usize, n: u32) -> Program {
    assert!(n > 0, "matrix must be non-empty");
    assert!(n * n * 4 <= 0x1000, "matrix exceeds its 4 KiB slot");
    let shared = mem_map::SHARED_BASE;
    let base = mem_map::private_base(core);
    let mut a = Asm::new();

    // r14 = n, r13 = n*n.
    a.li(R14, n);
    a.li(R13, n * n);

    // Copy-in: A and B from shared to private.
    a.li(R7, shared + A_OFF);
    a.li(R8, base + A_PRIV);
    a.li(R1, 0);
    a.label("copy_a");
    a.slli(R11, R1, 2);
    a.add(R12, R11, R7);
    a.ldw(R5, R12, 0);
    a.add(R12, R11, R8);
    a.stw(R5, R12, 0);
    a.addi(R1, R1, 1);
    a.bne(R1, R13, "copy_a");
    a.li(R7, shared + B_OFF);
    a.li(R8, base + B_PRIV);
    a.li(R1, 0);
    a.label("copy_b");
    a.slli(R11, R1, 2);
    a.add(R12, R11, R7);
    a.ldw(R5, R12, 0);
    a.add(R12, R11, R8);
    a.stw(R5, R12, 0);
    a.addi(R1, R1, 1);
    a.bne(R1, R13, "copy_b");

    // Multiply out of the private copies; r13 becomes the checksum.
    a.li(R7, base + A_PRIV);
    a.li(R8, base + B_PRIV);
    a.li(R9, base + C_PRIV);
    a.li(R13, 0);
    a.li(R1, 0); // i
    a.label("iloop");
    a.li(R2, 0); // j
    a.label("jloop");
    a.li(R4, 0); // acc
    a.li(R3, 0); // k
    a.label("kloop");
    a.mul(R11, R1, R14);
    a.add(R11, R11, R3);
    a.slli(R11, R11, 2);
    a.add(R11, R11, R7);
    a.ldw(R5, R11, 0);
    a.mul(R11, R3, R14);
    a.add(R11, R11, R2);
    a.slli(R11, R11, 2);
    a.add(R11, R11, R8);
    a.ldw(R6, R11, 0);
    a.mul(R5, R5, R6);
    a.add(R4, R4, R5);
    a.addi(R3, R3, 1);
    a.bne(R3, R14, "kloop");
    a.mul(R11, R1, R14);
    a.add(R11, R11, R2);
    a.slli(R11, R11, 2);
    a.add(R11, R11, R9);
    a.stw(R4, R11, 0);
    a.add(R13, R13, R4);
    a.addi(R2, R2, 1);
    a.bne(R2, R14, "jloop");
    // Row done: semaphore-protected mailbox touch.
    mutex_acquire(&mut a, MAILBOX_SEM, "row");
    a.li(R11, shared + MAILBOX_OFF);
    a.ldw(R12, R11, 0);
    a.li(R12, core as u32 + 1);
    a.stw(R12, R11, 0);
    mutex_release(&mut a, MAILBOX_SEM);
    a.addi(R1, R1, 1);
    a.bne(R1, R14, "iloop");

    // Publish the checksum and synchronise.
    a.li(R11, checksum_addr(core));
    a.stw(R13, R11, 0);
    barrier(&mut a, core, cores, 0, "end");
    a.halt();

    a.assemble(base).expect("MP matrix program assembles")
}

/// Checks every core's checksum against the golden model.
pub fn verify(platform: &Platform, cores: usize, n: u32) -> Result<(), String> {
    let want = golden_checksum(n);
    for core in 0..cores {
        let got = platform.peek_shared(checksum_addr(core));
        if got != want {
            return Err(format!(
                "MP matrix core {core}: checksum {got:#x}, expected {want:#x}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_platform::InterconnectChoice;

    fn run(cores: usize, n: u32) -> Platform {
        let mut b = PlatformBuilder::new();
        b.interconnect(InterconnectChoice::Amba);
        for core in 0..cores {
            b.add_cpu(program(core, cores, n));
        }
        preload(&mut b, n);
        let mut p = b.build().unwrap();
        let report = p.run(50_000_000);
        assert!(report.completed, "MP matrix did not complete");
        assert!(report.faults.is_empty(), "{:?}", report.faults);
        p
    }

    #[test]
    fn two_cores_produce_the_golden_checksum() {
        let p = run(2, 6);
        verify(&p, 2, 6).unwrap();
    }

    #[test]
    fn three_cores_also_verify() {
        let p = run(3, 6);
        verify(&p, 3, 6).unwrap();
    }

    #[test]
    fn golden_checksum_is_core_count_independent() {
        // Weak scaling: every core computes the same product.
        assert_eq!(golden_checksum(6), golden_checksum(6));
        assert_ne!(golden_checksum(6), golden_checksum(7));
    }

    #[test]
    fn execution_time_grows_with_core_count() {
        // The paper's saturation effect: more cores, more bus load,
        // longer per-core completion.
        let time = |cores: usize| {
            let mut b = PlatformBuilder::new();
            b.interconnect(InterconnectChoice::Amba);
            for core in 0..cores {
                b.add_cpu(program(core, cores, 6));
            }
            preload(&mut b, 6);
            let mut p = b.build().unwrap();
            let report = p.run(50_000_000);
            assert!(report.completed);
            report.execution_time().unwrap()
        };
        let two = time(2);
        let six = time(6);
        assert!(
            six > two,
            "bus saturation must lengthen the run: 2P={two} 6P={six}"
        );
    }
}
