//! The synthetic traffic-generator master.
//!
//! [`SyntheticTg`] drives the fabric directly from a destination
//! [`Pattern`] and an injection [`Schedule`] — no trace, no translation,
//! no program image. It speaks the same blocking OCP master protocol as
//! every other platform master: each packet is a posted write (single
//! word or inline burst) to the destination node's private memory, and
//! the next packet is not issued until the fabric accepted the current
//! one. The *schedule* however never waits: when the fabric back-
//! pressures, the master falls behind its scheduled slots, which is
//! exactly the offered-vs-accepted saturation signal.

use super::pattern::Pattern;
use super::shape::Schedule;
use ntg_core::rng::Xoshiro256;
use ntg_ocp::{DataWords, LinkArena, MasterPort, OcpRequest};
use ntg_platform::{mem_map, MasterReport, PlatformMaster};
use ntg_sim::{Activity, Component, Cycle};

/// Width in words of the per-destination address window packets land in
/// (a 1 KiB scratch region at the base of each private memory).
const WINDOW_WORDS: u64 = 256;

/// Configuration of a [`SyntheticTg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Destination-selection pattern.
    pub pattern: Pattern,
    /// Injection schedule (temporal shape × rate), pre-built so the
    /// constructor stays infallible.
    pub schedule: Schedule,
    /// Words per packet (≥ 1; ≤ 4 keeps the payload inline/alloc-free).
    pub words: u32,
    /// Packets to inject before halting (≥ 1).
    pub packets: u64,
    /// Per-master PRNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// A small default: uniform Bernoulli at λ=0.05, 4-word packets.
    pub fn example(seed: u64) -> Self {
        Self {
            pattern: Pattern::Uniform,
            schedule: Schedule::new(super::shape::ShapeKind::Bernoulli, 0.05),
            words: 4,
            packets: 256,
            seed,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Waiting for the next scheduled injection cycle.
    Waiting,
    /// A packet is asserted; waiting for the fabric to accept it.
    WaitAccept,
    /// All packets injected.
    Halted,
}

/// A synthetic pattern × shape traffic generator.
pub struct SyntheticTg {
    name: String,
    port: MasterPort,
    rng: Xoshiro256,
    schedule: Schedule,
    pattern: Pattern,
    words: u32,
    core: usize,
    cores: usize,
    packets_target: u64,
    packets_done: u64,
    /// Scheduled slot of the packet currently being injected (or, once
    /// halted, of the last packet).
    next_fire: Cycle,
    /// Scheduled slot of the last *issued* packet.
    last_scheduled: Cycle,
    idle_cycles: u64,
    wait_cycles: u64,
    state: State,
    halt_cycle: Option<Cycle>,
}

impl SyntheticTg {
    /// Creates a synthetic master for node `core` of `cores`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.words == 0` or `cfg.packets == 0`.
    pub fn new(
        name: impl Into<String>,
        port: MasterPort,
        cfg: SyntheticConfig,
        core: usize,
        cores: usize,
    ) -> Self {
        assert!(cfg.words >= 1, "packets must carry at least one word");
        assert!(cfg.packets >= 1, "must inject at least one packet");
        let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
        let mut schedule = cfg.schedule;
        let next_fire = schedule.next(&mut rng);
        Self {
            name: name.into(),
            port,
            rng,
            schedule,
            pattern: cfg.pattern,
            words: cfg.words,
            core,
            cores: cores.max(1),
            packets_target: cfg.packets,
            packets_done: 0,
            next_fire,
            last_scheduled: 0,
            idle_cycles: 0,
            wait_cycles: 0,
            state: State::Waiting,
            halt_cycle: None,
        }
    }

    /// Packets fully injected (accepted by the fabric) so far.
    pub fn packets(&self) -> u64 {
        self.packets_done
    }

    /// Whether every packet has been injected.
    pub fn is_halted(&self) -> bool {
        self.state == State::Halted
    }

    /// Builds and asserts the next packet; records its scheduled slot.
    fn issue(&mut self, now: Cycle, net: &mut LinkArena) {
        let dest = self.pattern.dest(self.core, self.cores, &mut self.rng);
        let span = WINDOW_WORDS - u64::from(self.words - 1).min(WINDOW_WORDS - 1);
        let addr = mem_map::private_base(dest) + self.rng.below(span) as u32 * 4;
        let req = if self.words == 1 {
            OcpRequest::write(addr, self.rng.next_u32())
        } else {
            let data: DataWords = (0..self.words).map(|_| self.rng.next_u32()).collect();
            OcpRequest::burst_write(addr, data)
        };
        self.port.assert_request(net, req, now);
        self.last_scheduled = self.next_fire;
        self.state = State::WaitAccept;
    }
}

impl Component<LinkArena> for SyntheticTg {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, now: Cycle, net: &mut LinkArena) {
        match self.state {
            State::Halted => {}
            State::Waiting => {
                if now >= self.next_fire {
                    self.issue(now, net);
                } else {
                    self.idle_cycles += 1;
                }
            }
            State::WaitAccept => {
                if self.port.take_accept(net, now).is_some() {
                    self.packets_done += 1;
                    if self.packets_done >= self.packets_target {
                        self.halt_cycle = Some(now);
                        self.state = State::Halted;
                    } else {
                        self.next_fire = self.schedule.next(&mut self.rng);
                        self.state = State::Waiting;
                        if now >= self.next_fire {
                            // Behind schedule (back-pressure): inject the
                            // next packet in the same cycle, like every
                            // other master's zero-gap path.
                            self.issue(now, net);
                        }
                    }
                } else {
                    self.wait_cycles += 1;
                }
            }
        }
    }

    fn is_idle(&self, net: &LinkArena) -> bool {
        self.state == State::Halted && self.port.is_quiet(net)
    }

    fn next_activity(&self, now: Cycle, net: &LinkArena) -> Activity {
        match self.state {
            State::Waiting => {
                if self.next_fire > now {
                    Activity::IdleUntil(self.next_fire)
                } else {
                    Activity::Busy
                }
            }
            State::WaitAccept => match self.port.next_event_at(net) {
                Some(at) if at > now => Activity::IdleUntil(at),
                Some(_) => Activity::Busy,
                None => Activity::waiting(),
            },
            State::Halted => {
                if self.port.is_quiet(net) {
                    Activity::Drained
                } else {
                    Activity::Busy
                }
            }
        }
    }

    fn skip(&mut self, now: Cycle, next: Cycle, _net: &mut LinkArena) {
        match self.state {
            State::Waiting => {
                debug_assert!(next <= self.next_fire);
                self.idle_cycles += next - now;
            }
            State::WaitAccept => {
                self.wait_cycles += next - now;
            }
            State::Halted => {}
        }
    }
}

impl PlatformMaster for SyntheticTg {
    fn halted(&self) -> bool {
        self.state == State::Halted
    }

    fn halt_cycle(&self) -> Option<Cycle> {
        self.halt_cycle
    }

    fn report(&self) -> MasterReport {
        MasterReport::Synthetic {
            packets: self.packets_done,
            last_scheduled: self.last_scheduled,
            idle_cycles: self.idle_cycles,
            wait_cycles: self.wait_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::shape::ShapeKind;
    use super::*;
    use ntg_mem::MemoryDevice;
    use ntg_ocp::MasterId;

    fn run_to_halt(cfg: SyntheticConfig) -> (SyntheticTg, MemoryDevice, Cycle) {
        let mut net = LinkArena::new();
        let (mport, sport) = net.channel("syn", MasterId(0));
        // One memory standing in for node 1's private window.
        let mut mem = MemoryDevice::new("ram", mem_map::private_base(1), 0x1_0000, sport);
        let mut tg = SyntheticTg::new("syn", mport, cfg, 0, 2);
        for now in 0..4_000_000u64 {
            tg.tick(now, &mut net);
            mem.tick(now, &mut net);
            if tg.is_halted() {
                return (tg, mem, now);
            }
        }
        panic!("synthetic TG did not finish");
    }

    fn cfg(shape: ShapeKind, rate: f64) -> SyntheticConfig {
        SyntheticConfig {
            pattern: Pattern::Uniform,
            schedule: Schedule::new(shape, rate),
            words: 4,
            packets: 300,
            seed: 11,
        }
    }

    #[test]
    fn injects_the_configured_number_of_packets() {
        let (tg, mem, _) = run_to_halt(cfg(ShapeKind::Bernoulli, 0.1));
        assert_eq!(tg.packets(), 300);
        assert_eq!(mem.writes(), 300);
        assert_eq!(mem.reads(), 0, "synthetic traffic is write-only");
    }

    #[test]
    fn same_seed_is_reproducible_different_seeds_differ() {
        let (_, _, t1) = run_to_halt(cfg(ShapeKind::Bernoulli, 0.1));
        let (_, _, t2) = run_to_halt(cfg(ShapeKind::Bernoulli, 0.1));
        assert_eq!(t1, t2);
        let (_, _, t3) = run_to_halt(SyntheticConfig {
            seed: 12,
            ..cfg(ShapeKind::Bernoulli, 0.1)
        });
        assert_ne!(t1, t3);
    }

    #[test]
    fn rate_stretches_the_run() {
        let (_, _, fast) = run_to_halt(cfg(ShapeKind::Bernoulli, 0.5));
        let (_, _, slow) = run_to_halt(cfg(ShapeKind::Bernoulli, 0.01));
        assert!(
            slow > fast * 10,
            "λ=0.01 must run much longer than λ=0.5: {fast} vs {slow}"
        );
    }

    #[test]
    fn all_shapes_complete_and_report_residency() {
        for shape in super::super::shape::ALL_SHAPES {
            let (tg, _, _) = run_to_halt(cfg(shape, 0.05));
            let MasterReport::Synthetic {
                packets,
                last_scheduled,
                idle_cycles,
                ..
            } = tg.report()
            else {
                panic!("wrong report kind");
            };
            assert_eq!(packets, 300);
            assert!(last_scheduled > 0);
            assert!(idle_cycles > 0, "{shape}: low λ must accrue idle cycles");
        }
    }

    #[test]
    fn single_word_packets_use_plain_writes() {
        let (tg, mem, _) = run_to_halt(SyntheticConfig {
            words: 1,
            ..cfg(ShapeKind::Burst { len: 8 }, 0.2)
        });
        assert_eq!(tg.packets(), 300);
        assert_eq!(mem.writes(), 300);
    }

    #[test]
    fn skip_bookkeeping_matches_ticked_idle() {
        // Drive the TG tick-by-tick and via skip() over the same idle
        // stretch; the idle counter must agree.
        let mk = |net: &mut LinkArena| {
            let (mport, _s) = net.channel("syn", MasterId(0));
            SyntheticTg::new(
                "syn",
                mport,
                SyntheticConfig {
                    pattern: Pattern::NearestNeighbor,
                    schedule: Schedule::new(ShapeKind::Bernoulli, 0.01),
                    words: 1,
                    packets: 2,
                    seed: 5,
                },
                0,
                4,
            )
        };
        let mut net = LinkArena::new();
        let mut ticked = mk(&mut net);
        let Activity::IdleUntil(w) = ticked.next_activity(0, &net) else {
            panic!("λ=0.01 with this seed should start with an idle gap");
        };
        assert!(w > 0 && w < 100_000);
        for now in 0..w {
            ticked.tick(now, &mut net);
        }
        let mut skipped = mk(&mut net);
        skipped.skip(0, w, &mut net);
        assert_eq!(ticked.idle_cycles, w);
        assert_eq!(skipped.idle_cycles, w);
    }
}
