//! Temporal injection shapes and the pre-sampled injection schedule.
//!
//! A [`Schedule`] turns a shape × rate pair into a strictly increasing
//! sequence of absolute injection cycles. The sequence is a pure
//! function of the PRNG stream — it never looks at back-pressure — so
//! the *offered* load is well defined even when the fabric saturates:
//! a blocked master falls behind its schedule and the gap between the
//! last scheduled slot and the actual completion time is exactly the
//! offered-vs-accepted signal surfaced in `RunReport`.

use ntg_core::rng::Xoshiro256;
use ntg_sim::Cycle;

/// A temporal injection shape (how packets are spaced in time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeKind {
    /// Independent Bernoulli trial each cycle: inject with probability λ.
    Bernoulli,
    /// Periodic bursts of `len` back-to-back packets; the period is
    /// stretched so the long-run average rate is still λ.
    Burst {
        /// Packets per burst (≥ 1).
        len: u32,
    },
    /// On/off square wave ("DDoS-style"): Bernoulli injection during the
    /// `on` window, silence during the `off` window, with the on-rate
    /// boosted so the long-run average rate is still λ.
    OnOff {
        /// On-window width in cycles (≥ 1).
        on: u32,
        /// Off-window width in cycles.
        off: u32,
    },
}

/// All three shapes (at representative burst/window sizes), in the order
/// the saturation experiments sweep them.
pub const ALL_SHAPES: [ShapeKind; 3] = [
    ShapeKind::Bernoulli,
    ShapeKind::Burst { len: 8 },
    ShapeKind::OnOff { on: 256, off: 768 },
];

impl std::fmt::Display for ShapeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ShapeKind::Bernoulli => f.write_str("bernoulli"),
            ShapeKind::Burst { len } => write!(f, "burst:{len}"),
            ShapeKind::OnOff { on, off } => write!(f, "onoff:{on}:{off}"),
        }
    }
}

impl std::str::FromStr for ShapeKind {
    type Err = String;

    /// Parses the names printed by [`Display`] (`bernoulli`,
    /// `burst:<len>`, `onoff:<on>:<off>`).
    fn from_str(s: &str) -> Result<Self, String> {
        if s == "bernoulli" {
            return Ok(ShapeKind::Bernoulli);
        }
        if let Some(len) = s.strip_prefix("burst:") {
            let len: u32 = len
                .parse()
                .ok()
                .filter(|l| *l >= 1)
                .ok_or_else(|| format!("burst length `{len}` is not a positive integer"))?;
            return Ok(ShapeKind::Burst { len });
        }
        if let Some(rest) = s.strip_prefix("onoff:") {
            let (on, off) = rest
                .split_once(':')
                .ok_or_else(|| format!("onoff spec `{rest}` is not <on>:<off>"))?;
            let on: u32 = on
                .parse()
                .ok()
                .filter(|w| *w >= 1)
                .ok_or_else(|| format!("on-window `{on}` is not a positive integer"))?;
            let off: u32 = off
                .parse()
                .map_err(|_| format!("off-window `{off}` is not an integer"))?;
            return Ok(ShapeKind::OnOff { on, off });
        }
        Err(format!(
            "unknown shape `{s}` (expected bernoulli, burst:<len> or onoff:<on>:<off>)"
        ))
    }
}

/// A strictly increasing stream of absolute injection cycles for one
/// master. Draws from the caller's PRNG (random shapes only); yields
/// identical sequences for identical seeds regardless of host threads,
/// shards or cycle skipping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    kind: ShapeKind,
    /// Effective per-eligible-cycle injection probability: λ for
    /// Bernoulli, the boosted on-window rate for on/off.
    p: f64,
    /// Packets scheduled so far.
    count: u64,
    /// Position on the *eligible-cycle* axis of the last scheduled
    /// packet (Bernoulli: the cycle itself; on/off: the on-time index).
    tau: Cycle,
}

impl Schedule {
    /// Creates a schedule with long-run average rate `rate` packets per
    /// cycle per master.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `(0, 1]`.
    pub fn new(kind: ShapeKind, rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "injection rate must be in (0, 1], got {rate}"
        );
        let p = match kind {
            ShapeKind::Bernoulli | ShapeKind::Burst { .. } => rate,
            ShapeKind::OnOff { on, off } => {
                let duty = f64::from(on) / (f64::from(on) + f64::from(off));
                (rate / duty).min(1.0)
            }
        };
        Self {
            kind,
            p,
            count: 0,
            tau: 0,
        }
    }

    /// Absolute cycle of the next scheduled injection. Strictly greater
    /// than the previously returned cycle.
    pub fn next(&mut self, rng: &mut Xoshiro256) -> Cycle {
        let at = match self.kind {
            ShapeKind::Bernoulli => {
                self.advance_tau(rng);
                self.tau
            }
            ShapeKind::Burst { len } => {
                let len = u64::from(len);
                let period = (len + 1).max((len as f64 / self.p).round() as u64);
                (self.count / len) * period + self.count % len
            }
            ShapeKind::OnOff { on, off } => {
                self.advance_tau(rng);
                let (on, off) = (u64::from(on), u64::from(off));
                (self.tau / on) * (on + off) + self.tau % on
            }
        };
        self.count += 1;
        at
    }

    /// Advances `tau` by a geometric gap with success probability `p`:
    /// the first draw lands on the gap itself, subsequent draws add
    /// `1 + gap` so the stream is strictly increasing.
    fn advance_tau(&mut self, rng: &mut Xoshiro256) {
        let gap = if self.p >= 1.0 {
            0
        } else {
            // P(gap = g) = (1-p)^g · p. `1 - u` is in (0, 1], so the
            // logarithm stays finite.
            let u = rng.f64();
            ((1.0 - u).ln() / (1.0 - self.p).ln()).floor() as u64
        };
        self.tau = if self.count == 0 {
            gap
        } else {
            self.tau.saturating_add(1 + gap)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take(kind: ShapeKind, rate: f64, seed: u64, n: usize) -> Vec<Cycle> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut s = Schedule::new(kind, rate);
        (0..n).map(|_| s.next(&mut rng)).collect()
    }

    #[test]
    fn shape_specs_round_trip() {
        for k in ALL_SHAPES {
            assert_eq!(k.to_string().parse::<ShapeKind>().unwrap(), k);
        }
        assert!("burst:0".parse::<ShapeKind>().is_err());
        assert!("onoff:0:4".parse::<ShapeKind>().is_err());
        assert!("onoff:4".parse::<ShapeKind>().is_err());
        assert!("poisson".parse::<ShapeKind>().is_err());
    }

    #[test]
    fn schedules_are_strictly_increasing_and_deterministic() {
        for kind in ALL_SHAPES {
            let a = take(kind, 0.1, 42, 500);
            let b = take(kind, 0.1, 42, 500);
            assert_eq!(a, b, "{kind}: same seed, same schedule");
            assert!(
                a.windows(2).all(|w| w[1] > w[0]),
                "{kind}: injections must be strictly increasing"
            );
        }
    }

    #[test]
    fn bernoulli_mean_rate_is_close_to_lambda() {
        let fires = take(ShapeKind::Bernoulli, 0.05, 7, 4_000);
        let span = *fires.last().unwrap() + 1;
        let rate = fires.len() as f64 / span as f64;
        assert!(
            (rate - 0.05).abs() < 0.005,
            "empirical rate {rate} far from 0.05"
        );
    }

    #[test]
    fn burst_positions_are_exact() {
        // len 4 at λ=0.1: period = max(5, 40) = 40.
        let fires = take(ShapeKind::Burst { len: 4 }, 0.1, 1, 10);
        assert_eq!(fires, vec![0, 1, 2, 3, 40, 41, 42, 43, 80, 81]);
    }

    #[test]
    fn burst_at_full_rate_is_back_to_back_with_a_gap() {
        // len 4 at λ=1.0 clamps the period to len+1.
        let fires = take(ShapeKind::Burst { len: 4 }, 1.0, 1, 6);
        assert_eq!(fires, vec![0, 1, 2, 3, 5, 6]);
    }

    #[test]
    fn onoff_fires_only_inside_on_windows() {
        let (on, off) = (64u64, 192u64);
        let fires = take(
            ShapeKind::OnOff {
                on: on as u32,
                off: off as u32,
            },
            0.05,
            3,
            800,
        );
        for t in &fires {
            assert!(t % (on + off) < on, "cycle {t} lies in an off window");
        }
        // The on-rate is boosted 4× to preserve the average rate.
        let span = *fires.last().unwrap() + 1;
        let rate = fires.len() as f64 / span as f64;
        assert!(
            (rate - 0.05).abs() < 0.01,
            "empirical mean rate {rate} far from 0.05"
        );
    }

    #[test]
    fn onoff_on_rate_clamps_at_one() {
        // λ=0.9 with a 25% duty cycle wants on-rate 3.6 → clamps to 1.0:
        // back-to-back injections inside every on window.
        let fires = take(ShapeKind::OnOff { on: 4, off: 12 }, 0.9, 1, 8);
        assert_eq!(fires, vec![0, 1, 2, 3, 16, 17, 18, 19]);
    }

    #[test]
    #[should_panic(expected = "injection rate")]
    fn zero_rate_rejected() {
        let _ = Schedule::new(ShapeKind::Bernoulli, 0.0);
    }
}
