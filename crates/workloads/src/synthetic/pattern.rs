//! Destination patterns — the classic NoC evaluation set.
//!
//! Each pattern maps a source node to a destination node. The
//! bit-permutation patterns (complement, shuffle, transpose) are defined
//! on `b = ⌊log₂ cores⌋` bits, matching the standard k-ary mesh
//! formulations; on non-power-of-two platforms the permuted index is
//! reduced `mod cores` so every node still has a defined target.
//! Deterministic patterns may map a node to itself (the transpose
//! diagonal): such traffic still crosses the interconnect, because every
//! private memory is a fabric slave.

use ntg_core::rng::Xoshiro256;

/// A destination-selection pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Uniform random over all *other* nodes.
    Uniform,
    /// Bitwise complement of the source index.
    BitComplement,
    /// Rotate-left by one bit (the perfect shuffle).
    BitShuffle,
    /// Swap the high and low halves of the index bits (matrix
    /// transpose); rotation by ⌊b/2⌋ bits for odd bit widths.
    Transpose,
    /// Half-way around the ring: `(src + cores/2) mod cores`.
    Tornado,
    /// The next node on the ring: `(src + 1) mod cores`.
    NearestNeighbor,
    /// `percent`% of packets to the hot node (node 0), the rest uniform
    /// random over the other nodes.
    Hotspot {
        /// Share of packets aimed at the hot node, in percent (0–100).
        percent: u8,
    },
}

/// All patterns (hotspot at its conventional 80%), in the order the
/// saturation experiments sweep them.
pub const ALL_PATTERNS: [Pattern; 7] = [
    Pattern::Uniform,
    Pattern::BitComplement,
    Pattern::BitShuffle,
    Pattern::Transpose,
    Pattern::Tornado,
    Pattern::NearestNeighbor,
    Pattern::Hotspot { percent: 80 },
];

impl Pattern {
    /// Picks the destination node for one packet from `src` on a
    /// `cores`-node platform. Random patterns draw from `rng`;
    /// deterministic patterns consume no randomness.
    pub fn dest(&self, src: usize, cores: usize, rng: &mut Xoshiro256) -> usize {
        if cores <= 1 {
            return 0;
        }
        let bits = usize::BITS - 1 - (cores.leading_zeros());
        let bits = bits.max(1);
        let mask = (1usize << bits) - 1;
        match *self {
            Pattern::Uniform => uniform_other(src, cores, rng),
            Pattern::BitComplement => (!src & mask) % cores,
            Pattern::BitShuffle => ((src << 1 | src >> (bits - 1) as usize) & mask) % cores,
            Pattern::Transpose => {
                let lo = (bits / 2) as usize;
                if lo == 0 {
                    src % cores
                } else {
                    ((src >> lo | src << (bits as usize - lo)) & mask) % cores
                }
            }
            Pattern::Tornado => (src + cores / 2) % cores,
            Pattern::NearestNeighbor => (src + 1) % cores,
            Pattern::Hotspot { percent } => {
                if rng.bool(f64::from(percent) / 100.0) {
                    0
                } else {
                    uniform_other(src, cores, rng)
                }
            }
        }
    }
}

/// Uniform over `0..cores` excluding `src`.
fn uniform_other(src: usize, cores: usize, rng: &mut Xoshiro256) -> usize {
    let d = rng.below(cores as u64 - 1) as usize;
    if d >= src {
        d + 1
    } else {
        d
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Pattern::Uniform => f.write_str("uniform"),
            Pattern::BitComplement => f.write_str("complement"),
            Pattern::BitShuffle => f.write_str("shuffle"),
            Pattern::Transpose => f.write_str("transpose"),
            Pattern::Tornado => f.write_str("tornado"),
            Pattern::NearestNeighbor => f.write_str("neighbor"),
            Pattern::Hotspot { percent } => write!(f, "hotspot:{percent}"),
        }
    }
}

impl std::str::FromStr for Pattern {
    type Err = String;

    /// Parses the names printed by [`Display`] (`uniform`, `complement`,
    /// `shuffle`, `transpose`, `tornado`, `neighbor`, `hotspot:<pct>`).
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "uniform" => Ok(Pattern::Uniform),
            "complement" => Ok(Pattern::BitComplement),
            "shuffle" => Ok(Pattern::BitShuffle),
            "transpose" => Ok(Pattern::Transpose),
            "tornado" => Ok(Pattern::Tornado),
            "neighbor" => Ok(Pattern::NearestNeighbor),
            _ => {
                if let Some(pct) = s.strip_prefix("hotspot:") {
                    let percent: u8 = pct
                        .parse()
                        .ok()
                        .filter(|p| *p <= 100)
                        .ok_or_else(|| format!("hotspot percent `{pct}` is not 0..=100"))?;
                    Ok(Pattern::Hotspot { percent })
                } else {
                    Err(format!(
                        "unknown pattern `{s}` (expected uniform, complement, shuffle, \
                         transpose, tornado, neighbor or hotspot:<pct>)"
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_strings_round_trip() {
        for p in ALL_PATTERNS {
            assert_eq!(p.to_string().parse::<Pattern>().unwrap(), p);
        }
        assert!("hotspot:101".parse::<Pattern>().is_err());
        assert!("hotspot:".parse::<Pattern>().is_err());
        assert!("nope".parse::<Pattern>().is_err());
    }

    #[test]
    fn destinations_stay_in_range() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for cores in [1usize, 2, 3, 4, 6, 8, 12, 16] {
            for p in ALL_PATTERNS {
                for src in 0..cores {
                    for _ in 0..8 {
                        let d = p.dest(src, cores, &mut rng);
                        assert!(d < cores, "{p} src {src} of {cores} -> {d}");
                    }
                }
            }
        }
    }

    #[test]
    fn uniform_never_targets_self() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..200 {
            for src in 0..8 {
                assert_ne!(Pattern::Uniform.dest(src, 8, &mut rng), src);
            }
        }
    }

    #[test]
    fn classic_patterns_match_on_power_of_two() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        // 8 nodes, 3 bits.
        assert_eq!(Pattern::BitComplement.dest(0b011, 8, &mut rng), 0b100);
        assert_eq!(Pattern::BitShuffle.dest(0b110, 8, &mut rng), 0b101);
        assert_eq!(Pattern::Tornado.dest(6, 8, &mut rng), 2);
        assert_eq!(Pattern::NearestNeighbor.dest(7, 8, &mut rng), 0);
        // 16 nodes, 4 bits: transpose swaps the 2-bit halves.
        assert_eq!(Pattern::Transpose.dest(0b0111, 16, &mut rng), 0b1101);
    }

    #[test]
    fn hotspot_hits_the_hot_node() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let p = Pattern::Hotspot { percent: 100 };
        for src in 1..8 {
            assert_eq!(p.dest(src, 8, &mut rng), 0);
        }
        let p = Pattern::Hotspot { percent: 0 };
        for src in 0..8 {
            assert_ne!(p.dest(src, 8, &mut rng), src, "falls back to uniform");
        }
    }
}
