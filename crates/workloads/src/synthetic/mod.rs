//! Synthetic traffic workloads: pattern × temporal-shape generators.
//!
//! The trace-driven TG pipeline caps scenario diversity at the benchmark
//! programs we hand-write; this module provides the standard NoC
//! evaluation grid instead. A [`SyntheticTg`] master needs no trace or
//! translation step — it generates OCP packets directly from a
//! destination [`Pattern`] (uniform, bit-complement, bit-shuffle,
//! transpose, tornado, nearest-neighbor, hotspot) and a temporal
//! [`ShapeKind`] (Bernoulli at rate λ, periodic bursts, on/off square
//! waves), seeded per master so campaigns stay byte-identical across
//! host threads and shards.
//!
//! The compact descriptor grammar used by campaign specs and the
//! `ntg-sweep` CLI is
//!
//! ```text
//! <pattern>+<shape>@<rate>/<words>
//! ```
//!
//! e.g. `uniform+bernoulli@0.05/4`, `transpose+burst:8@0.1/2`,
//! `hotspot:80+onoff:256:768@0.05/4` — see [`SyntheticSpec`].

mod pattern;
mod shape;
mod tg;

pub use pattern::{Pattern, ALL_PATTERNS};
pub use shape::{Schedule, ShapeKind, ALL_SHAPES};
pub use tg::{SyntheticConfig, SyntheticTg};

use ntg_core::rng::derive_seed;
use ntg_platform::{InterconnectChoice, MasterKind, Platform, PlatformBuilder, PlatformError};

/// A complete synthetic traffic descriptor: destination pattern,
/// temporal shape, long-run injection rate and packet size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticSpec {
    /// Destination-selection pattern.
    pub pattern: Pattern,
    /// Temporal injection shape.
    pub shape: ShapeKind,
    /// Long-run average injection rate in packets/cycle/master, in
    /// `(0, 1]`.
    pub rate: f64,
    /// Words per packet (≥ 1; ≤ 4 keeps payloads inline/alloc-free).
    pub words: u32,
}

impl SyntheticSpec {
    /// Validates the numeric fields.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.rate > 0.0 && self.rate <= 1.0) {
            return Err(format!("rate {} outside (0, 1]", self.rate));
        }
        if self.words < 1 || self.words > 64 {
            return Err(format!("packet size {} words outside 1..=64", self.words));
        }
        Ok(())
    }
}

/// The `<pattern>+<shape>@<rate>/<words>` descriptor notation. The rate
/// uses Rust's shortest-round-trip float formatting, so
/// `to_string().parse()` is exact.
impl std::fmt::Display for SyntheticSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}+{}@{}/{}",
            self.pattern, self.shape, self.rate, self.words
        )
    }
}

impl std::str::FromStr for SyntheticSpec {
    type Err = String;

    /// Parses the descriptor notation produced by [`Display`].
    fn from_str(s: &str) -> Result<Self, String> {
        let (front, tail) = s
            .rsplit_once('@')
            .ok_or_else(|| format!("synthetic spec `{s}` has no `@<rate>/<words>`"))?;
        let (rate, words) = tail
            .split_once('/')
            .ok_or_else(|| format!("synthetic spec `{s}`: `{tail}` is not `<rate>/<words>`"))?;
        let rate: f64 = rate
            .parse()
            .map_err(|_| format!("synthetic spec `{s}`: rate `{rate}` is not a number"))?;
        let words: u32 = words
            .parse()
            .map_err(|_| format!("synthetic spec `{s}`: `{words}` is not a word count"))?;
        let (pattern, shape) = front
            .split_once('+')
            .ok_or_else(|| format!("synthetic spec `{s}` has no `<pattern>+<shape>`"))?;
        let spec = SyntheticSpec {
            pattern: pattern.parse()?,
            shape: shape.parse()?,
            rate,
            words,
        };
        spec.validate()
            .map_err(|e| format!("synthetic spec `{s}`: {e}"))?;
        Ok(spec)
    }
}

/// Platform-builder extension adding synthetic traffic-generator
/// masters.
pub trait SyntheticPlatformExt {
    /// Adds one [`SyntheticTg`] master driven by `spec`, halting after
    /// `packets` packets. Each master's PRNG stream is derived from
    /// `seed` and its core index, so the same call on every core still
    /// yields decorrelated (but reproducible) traffic.
    fn add_synthetic_tg(&mut self, spec: SyntheticSpec, packets: u64, seed: u64) -> &mut Self;
}

impl SyntheticPlatformExt for PlatformBuilder {
    fn add_synthetic_tg(&mut self, spec: SyntheticSpec, packets: u64, seed: u64) -> &mut Self {
        self.add_master(MasterKind::Custom(Box::new(move |ctx, port| {
            let cfg = SyntheticConfig {
                pattern: spec.pattern,
                schedule: Schedule::new(spec.shape, spec.rate),
                words: spec.words,
                packets,
                seed: derive_seed(seed, ctx.core as u64),
            };
            Box::new(SyntheticTg::new(
                format!("syn{}", ctx.core),
                port,
                cfg,
                ctx.core,
                ctx.cores,
            ))
        })))
    }
}

/// Builds a complete platform of `cores` synthetic masters, each
/// injecting `packets` packets per `spec`.
///
/// # Errors
///
/// Propagates [`PlatformError`] from the builder.
///
/// # Panics
///
/// Panics if `spec` fails [`SyntheticSpec::validate`] — campaign specs
/// are validated at parse time, so a panic here indicates a caller bug.
pub fn build_synthetic_platform(
    cores: usize,
    interconnect: InterconnectChoice,
    spec: SyntheticSpec,
    packets: u64,
    seed: u64,
) -> Result<Platform, PlatformError> {
    spec.validate().expect("invalid synthetic spec");
    let mut b = PlatformBuilder::new();
    b.interconnect(interconnect);
    for _ in 0..cores {
        b.add_synthetic_tg(spec, packets, seed);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_platform::MasterReport;

    #[test]
    fn descriptor_round_trips() {
        for s in [
            "uniform+bernoulli@0.05/4",
            "complement+bernoulli@0.2/1",
            "shuffle+burst:8@0.1/2",
            "transpose+burst:16@0.125/4",
            "tornado+onoff:256:768@0.05/4",
            "neighbor+bernoulli@1/1",
            "hotspot:80+onoff:64:192@0.01/4",
        ] {
            let spec: SyntheticSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
            assert_eq!(spec.to_string().parse::<SyntheticSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn bad_descriptors_rejected() {
        for s in [
            "uniform+bernoulli",          // no @rate/words
            "uniform@0.05/4",             // no +shape
            "uniform+bernoulli@0.05",     // no /words
            "uniform+bernoulli@0/4",      // zero rate
            "uniform+bernoulli@1.5/4",    // rate > 1
            "uniform+bernoulli@0.05/0",   // zero words
            "uniform+bernoulli@0.05/100", // oversized packet
            "warp+bernoulli@0.05/4",      // unknown pattern
            "uniform+sine@0.05/4",        // unknown shape
        ] {
            assert!(s.parse::<SyntheticSpec>().is_err(), "{s} should fail");
        }
    }

    #[test]
    fn platform_of_synthetic_masters_runs_to_completion() {
        let spec: SyntheticSpec = "uniform+bernoulli@0.2/4".parse().unwrap();
        let mut p = build_synthetic_platform(4, InterconnectChoice::Crossbar, spec, 64, 7).unwrap();
        let report = p.run(2_000_000);
        assert!(report.completed, "synthetic platform must drain");
        let mut packets = 0;
        for m in &report.masters {
            let MasterReport::Synthetic { packets: p, .. } = m else {
                panic!("expected synthetic master reports");
            };
            packets += p;
        }
        assert_eq!(packets, 4 * 64);
        let (offered, accepted) = report.synthetic_rates().unwrap();
        assert!(offered > 0.0 && accepted > 0.0 && accepted <= offered + 1e-9);
    }

    #[test]
    fn same_seed_same_completion_cycle() {
        // Deterministic pattern × shape: timing is seed-independent by
        // construction (the seed only varies payloads and offsets).
        let spec: SyntheticSpec = "transpose+burst:4@0.1/2".parse().unwrap();
        let run = |spec: SyntheticSpec, seed| {
            let mut p =
                build_synthetic_platform(4, InterconnectChoice::Xpipes, spec, 48, seed).unwrap();
            let r = p.run(2_000_000);
            assert!(r.completed);
            r.execution_time().unwrap()
        };
        assert_eq!(run(spec, 1), run(spec, 1));
        assert_eq!(run(spec, 1), run(spec, 2));
        // Random pattern × shape: reproducible per seed, different
        // across seeds.
        let spec: SyntheticSpec = "uniform+bernoulli@0.1/2".parse().unwrap();
        assert_eq!(run(spec, 1), run(spec, 1));
        assert_ne!(run(spec, 1), run(spec, 2));
    }
}
