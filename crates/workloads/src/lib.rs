//! The four benchmark workloads of the paper's evaluation (§6), written
//! in Srisc assembly for the `ntg` platform:
//!
//! * [`Workload::SpMatrix`] — single-processor matrix manipulation:
//!   initialise two matrices in private (cacheable) memory, multiply,
//!   checksum into shared memory. Assesses accuracy and speedup in the
//!   simplest environment.
//! * [`Workload::Cacheloop`] — idle loops running entirely from the
//!   instruction cache with only minimal bus interaction; used to assess
//!   TG speedup while scaling the processor count.
//! * [`Workload::MpMatrix`] — multiprocessor matrix multiplication over
//!   *uncached shared memory*, with semaphore-protected mailbox updates
//!   after every row and a final flag barrier: heavy contention and
//!   reactive synchronisation traffic.
//! * [`Workload::Des`] — DES-style encryption: a 16-round Feistel cipher
//!   with S-box table lookups (tables in cacheable private memory,
//!   causing data-cache refill bursts), plaintext/ciphertext in shared
//!   memory, per-block semaphore-protected mailbox updates and a final
//!   barrier.
//!
//! Every workload has a host-side *golden model*; [`Workload::verify`]
//! checks the simulated memory image against it, so the cycle-true
//! platform is validated functionally, not just structurally.
//!
//! # Design constraints (for the paper's validation experiment)
//!
//! Workloads are written so each core's *written data values* are
//! independent of inter-core interleaving: cores write only to their own
//! output regions, to semaphores and to per-core flags/mailbox values
//! derived from their own id. Reads of contended locations (semaphores,
//! mailboxes, barrier flags) are still fully reactive. This makes
//! translated TG programs identical regardless of the interconnect the
//! trace was collected on — the property the paper's first experiment
//! demonstrates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cacheloop;
mod common;
mod des;
mod mp_matrix;
mod sp_matrix;
pub mod synthetic;

use ntg_platform::{InterconnectChoice, Platform, PlatformBuilder, PlatformError};

/// A benchmark with its size parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Single-processor `n × n` matrix manipulation.
    SpMatrix {
        /// Matrix dimension.
        n: u32,
    },
    /// Cache-resident idle loop.
    Cacheloop {
        /// Loop iterations.
        iterations: u32,
    },
    /// Multiprocessor `n × n` matrix multiplication over shared memory.
    MpMatrix {
        /// Matrix dimension.
        n: u32,
    },
    /// DES-style 16-round Feistel encryption.
    Des {
        /// Blocks encrypted by each core.
        blocks_per_core: u32,
    },
    /// Synthetic pattern × shape traffic (no CPU program, no trace):
    /// every master injects this many packets per the campaign's
    /// [`synthetic::SyntheticSpec`] descriptor.
    Synthetic {
        /// Packets injected per master before halting.
        packets: u32,
    },
}

/// The compact `name:param` spec notation (`sp_matrix:16`,
/// `cacheloop:60000`, `mp_matrix:24`, `des:24`) used by campaign specs,
/// JSONL results and the `ntg-sweep` CLI.
impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Workload::SpMatrix { n } => write!(f, "sp_matrix:{n}"),
            Workload::Cacheloop { iterations } => write!(f, "cacheloop:{iterations}"),
            Workload::MpMatrix { n } => write!(f, "mp_matrix:{n}"),
            Workload::Des { blocks_per_core } => write!(f, "des:{blocks_per_core}"),
            Workload::Synthetic { packets } => write!(f, "synthetic:{packets}"),
        }
    }
}

impl std::str::FromStr for Workload {
    type Err = String;

    /// Parses the `name:param` notation produced by [`Display`].
    fn from_str(s: &str) -> Result<Self, String> {
        let (name, param) = s
            .split_once(':')
            .ok_or_else(|| format!("workload spec `{s}` is not `name:param`"))?;
        let param: u32 = param
            .parse()
            .map_err(|_| format!("workload spec `{s}`: `{param}` is not a number"))?;
        match name {
            "sp_matrix" => Ok(Workload::SpMatrix { n: param }),
            "cacheloop" => Ok(Workload::Cacheloop { iterations: param }),
            "mp_matrix" => Ok(Workload::MpMatrix { n: param }),
            "des" => Ok(Workload::Des {
                blocks_per_core: param,
            }),
            "synthetic" => Ok(Workload::Synthetic { packets: param }),
            _ => Err(format!(
                "unknown workload `{name}` (expected sp_matrix, cacheloop, mp_matrix, des \
                 or synthetic)"
            )),
        }
    }
}

impl Workload {
    /// The benchmark's name as used in the paper's Table 2.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::SpMatrix { .. } => "SP matrix",
            Workload::Cacheloop { .. } => "Cacheloop",
            Workload::MpMatrix { .. } => "MP matrix",
            Workload::Des { .. } => "DES",
            Workload::Synthetic { .. } => "Synthetic",
        }
    }

    /// Small sizes for fast unit/integration testing.
    pub fn test_scale(&self) -> Workload {
        match self {
            Workload::SpMatrix { .. } => Workload::SpMatrix { n: 6 },
            Workload::Cacheloop { .. } => Workload::Cacheloop { iterations: 500 },
            Workload::MpMatrix { .. } => Workload::MpMatrix { n: 8 },
            Workload::Des { .. } => Workload::Des { blocks_per_core: 2 },
            Workload::Synthetic { .. } => Workload::Synthetic { packets: 64 },
        }
    }

    /// Builds the benchmark program for `core` of `cores`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are unsupported (e.g. more cores than
    /// matrix rows); the concrete limits are documented per workload.
    pub fn program(&self, core: usize, cores: usize) -> ntg_cpu::Program {
        match *self {
            Workload::SpMatrix { n } => sp_matrix::program(core, n),
            Workload::Cacheloop { iterations } => cacheloop::program(core, iterations),
            Workload::MpMatrix { n } => mp_matrix::program(core, cores, n),
            Workload::Des { blocks_per_core } => des::program(core, cores, blocks_per_core),
            Workload::Synthetic { .. } => {
                panic!("synthetic workloads have no CPU program; build a SyntheticTg platform")
            }
        }
    }

    /// Applies the workload's shared-memory preload (input data) to a
    /// platform builder.
    pub fn preload(&self, builder: &mut PlatformBuilder, cores: usize) {
        match *self {
            Workload::MpMatrix { n } => mp_matrix::preload(builder, n),
            Workload::Des { blocks_per_core } => des::preload(builder, cores, blocks_per_core),
            Workload::SpMatrix { .. } | Workload::Cacheloop { .. } | Workload::Synthetic { .. } => {
            }
        }
    }

    /// Builds a complete CPU (reference) platform running this workload
    /// on `cores` cores.
    ///
    /// # Errors
    ///
    /// Propagates [`PlatformError`] from the builder.
    pub fn build_platform(
        &self,
        cores: usize,
        interconnect: InterconnectChoice,
        tracing: bool,
    ) -> Result<Platform, PlatformError> {
        let mut b = PlatformBuilder::new();
        b.interconnect(interconnect).tracing(tracing);
        for core in 0..cores {
            b.add_cpu(self.program(core, cores));
        }
        self.preload(&mut b, cores);
        b.build()
    }

    /// Builds a TG platform from pre-assembled images, with this
    /// workload's input preload (slaves must hold the same data so the
    /// reactive traffic sees the same values).
    ///
    /// # Errors
    ///
    /// Propagates [`PlatformError`] from the builder.
    pub fn build_tg_platform(
        &self,
        images: Vec<ntg_core::TgImage>,
        interconnect: InterconnectChoice,
        tracing: bool,
    ) -> Result<Platform, PlatformError> {
        let cores = images.len();
        let mut b = PlatformBuilder::new();
        b.interconnect(interconnect).tracing(tracing);
        for image in images {
            b.add_tg(image);
        }
        self.preload(&mut b, cores);
        b.build()
    }

    /// Checks the simulated result against the host-side golden model.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn verify(&self, platform: &Platform, cores: usize) -> Result<(), String> {
        match *self {
            Workload::SpMatrix { n } => sp_matrix::verify(platform, n),
            Workload::Cacheloop { .. } => Ok(()), // no memory output
            Workload::MpMatrix { n } => mp_matrix::verify(platform, cores, n),
            Workload::Des { blocks_per_core } => des::verify(platform, cores, blocks_per_core),
            // Synthetic traffic carries random payloads with no golden
            // model; determinism is checked at the campaign level.
            Workload::Synthetic { .. } => Ok(()),
        }
    }

    /// Valid core counts for this workload (the paper's Table 2 sweep).
    pub fn paper_core_counts(&self) -> Vec<usize> {
        match self {
            Workload::SpMatrix { .. } => vec![1],
            Workload::Cacheloop { .. } | Workload::MpMatrix { .. } => {
                vec![2, 4, 6, 8, 10, 12]
            }
            Workload::Des { .. } => vec![3, 4, 6, 8, 10, 12],
            Workload::Synthetic { .. } => vec![2, 4, 8],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_strings_round_trip() {
        for w in [
            Workload::SpMatrix { n: 16 },
            Workload::Cacheloop { iterations: 60_000 },
            Workload::MpMatrix { n: 24 },
            Workload::Des {
                blocks_per_core: 24,
            },
        ] {
            let s = w.to_string();
            assert_eq!(s.parse::<Workload>().unwrap(), w, "{s}");
        }
        assert!("nope:1".parse::<Workload>().is_err());
        assert!("sp_matrix".parse::<Workload>().is_err());
        assert!("sp_matrix:x".parse::<Workload>().is_err());
    }

    #[test]
    fn names_match_table2() {
        assert_eq!(Workload::SpMatrix { n: 4 }.name(), "SP matrix");
        assert_eq!(Workload::Cacheloop { iterations: 1 }.name(), "Cacheloop");
        assert_eq!(Workload::MpMatrix { n: 4 }.name(), "MP matrix");
        assert_eq!(Workload::Des { blocks_per_core: 1 }.name(), "DES");
    }

    #[test]
    fn paper_core_counts_match_table2() {
        assert_eq!(Workload::SpMatrix { n: 4 }.paper_core_counts(), vec![1]);
        assert_eq!(
            Workload::Des { blocks_per_core: 1 }.paper_core_counts(),
            vec![3, 4, 6, 8, 10, 12]
        );
    }
}
