//! SP matrix: single-processor matrix manipulation (Table 2, first row).
//!
//! Initialises two `n × n` matrices in private (cacheable) memory,
//! multiplies them, and writes a checksum of the product into shared
//! memory. Traffic: instruction-cache refills, write-through stores to
//! private memory, data-cache refill bursts, one shared write.

use ntg_cpu::isa::{R1, R10, R11, R12, R2, R3, R4, R5, R6, R7, R8, R9};
use ntg_cpu::{Asm, Program};
use ntg_platform::{mem_map, Platform};

/// Private-memory offsets for the three matrices (from the core's base).
const A_OFF: u32 = 0x8000;
const B_OFF: u32 = 0x9000;
const C_OFF: u32 = 0xA000;

/// Initial values: `A[i] = 7 i + 3`, `B[i] = 11 i + 5` (mod 2³²).
fn a_val(i: u32) -> u32 {
    i.wrapping_mul(7).wrapping_add(3)
}

fn b_val(i: u32) -> u32 {
    i.wrapping_mul(11).wrapping_add(5)
}

/// Host-side golden model: the checksum the program must produce.
pub fn golden_checksum(n: u32) -> u32 {
    let idx = |r: u32, c: u32| (r * n + c) as usize;
    let nn = (n * n) as usize;
    let a: Vec<u32> = (0..nn as u32).map(a_val).collect();
    let b: Vec<u32> = (0..nn as u32).map(b_val).collect();
    let mut sum: u32 = 0;
    for i in 0..n {
        for j in 0..n {
            let mut acc: u32 = 0;
            for k in 0..n {
                acc = acc.wrapping_add(a[idx(i, k)].wrapping_mul(b[idx(k, j)]));
            }
            sum = sum.wrapping_add(acc);
        }
    }
    sum
}

/// The shared-memory address receiving the checksum.
pub fn checksum_addr() -> u32 {
    mem_map::SHARED_BASE
}

/// Builds the SP matrix program.
///
/// # Panics
///
/// Panics if `n` is 0 or the matrices exceed their private-memory slots.
pub fn program(core: usize, n: u32) -> Program {
    assert!(n > 0, "matrix must be non-empty");
    assert!(n * n * 4 <= 0x1000, "matrix exceeds its 4 KiB slot");
    let base = mem_map::private_base(core);
    let mut a = Asm::new();

    // r7/r8/r9 = A/B/C bases, r12 = n, r10 = n*n.
    a.li(R7, base + A_OFF);
    a.li(R8, base + B_OFF);
    a.li(R9, base + C_OFF);
    a.li(R12, n);
    a.li(R10, n * n);

    // Initialisation: A[i] = 7i+3, B[i] = 11i+5.
    a.li(R1, 0);
    a.label("init");
    a.slli(R11, R1, 2);
    a.li(R5, 7);
    a.mul(R5, R1, R5);
    a.addi(R5, R5, 3);
    a.add(R6, R11, R7);
    a.stw(R5, R6, 0);
    a.li(R5, 11);
    a.mul(R5, R1, R5);
    a.addi(R5, R5, 5);
    a.add(R6, R11, R8);
    a.stw(R5, R6, 0);
    a.addi(R1, R1, 1);
    a.bne(R1, R10, "init");

    // Multiplication: C = A × B.
    a.li(R1, 0); // i
    a.label("iloop");
    a.li(R2, 0); // j
    a.label("jloop");
    a.li(R4, 0); // acc
    a.li(R3, 0); // k
    a.label("kloop");
    // r5 = A[i*n + k]
    a.mul(R11, R1, R12);
    a.add(R11, R11, R3);
    a.slli(R11, R11, 2);
    a.add(R11, R11, R7);
    a.ldw(R5, R11, 0);
    // r6 = B[k*n + j]
    a.mul(R11, R3, R12);
    a.add(R11, R11, R2);
    a.slli(R11, R11, 2);
    a.add(R11, R11, R8);
    a.ldw(R6, R11, 0);
    a.mul(R5, R5, R6);
    a.add(R4, R4, R5);
    a.addi(R3, R3, 1);
    a.bne(R3, R12, "kloop");
    // C[i*n + j] = acc
    a.mul(R11, R1, R12);
    a.add(R11, R11, R2);
    a.slli(R11, R11, 2);
    a.add(R11, R11, R9);
    a.stw(R4, R11, 0);
    a.addi(R2, R2, 1);
    a.bne(R2, R12, "jloop");
    a.addi(R1, R1, 1);
    a.bne(R1, R12, "iloop");

    // Checksum of C into shared memory.
    a.li(R1, 0);
    a.li(R4, 0);
    a.label("csum");
    a.slli(R11, R1, 2);
    a.add(R11, R11, R9);
    a.ldw(R5, R11, 0);
    a.add(R4, R4, R5);
    a.addi(R1, R1, 1);
    a.bne(R1, R10, "csum");
    a.li(R11, checksum_addr());
    a.stw(R4, R11, 0);
    a.halt();

    a.assemble(base).expect("SP matrix program assembles")
}

/// Checks the checksum in shared memory against the golden model.
pub fn verify(platform: &Platform, n: u32) -> Result<(), String> {
    let got = platform.peek_shared(checksum_addr());
    let want = golden_checksum(n);
    if got == want {
        Ok(())
    } else {
        Err(format!("SP matrix checksum {got:#x}, expected {want:#x}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_platform::{InterconnectChoice, PlatformBuilder};

    #[test]
    fn computes_the_golden_checksum() {
        let mut b = PlatformBuilder::new();
        b.interconnect(InterconnectChoice::Amba);
        b.add_cpu(program(0, 4));
        let mut p = b.build().unwrap();
        let report = p.run(5_000_000);
        assert!(report.completed);
        assert!(report.faults.is_empty(), "{:?}", report.faults);
        verify(&p, 4).unwrap();
    }

    #[test]
    fn golden_model_is_plausible() {
        // Hand-checked 1×1 case: A=[3], B=[5] → C=[15].
        assert_eq!(golden_checksum(1), 15);
    }

    #[test]
    fn larger_matrix_still_verifies() {
        let mut b = PlatformBuilder::new();
        b.add_cpu(program(0, 8));
        let mut p = b.build().unwrap();
        assert!(p.run(20_000_000).completed);
        verify(&p, 8).unwrap();
    }

    #[test]
    #[should_panic(expected = "4 KiB slot")]
    fn oversized_matrix_rejected() {
        let _ = program(0, 64);
    }
}
