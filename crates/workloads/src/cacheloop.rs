//! Cacheloop: idle loops inside the instruction cache (Table 2).
//!
//! After the first few instruction-cache refills the loop executes
//! entirely from the cache with *no* bus traffic — the paper uses it to
//! measure TG speedup scaling with the processor count in the absence of
//! interconnect congestion ("Cacheloop … always executes from the local
//! caches without any bus traffic").

use ntg_cpu::isa::{R1, R2, R3, R4};
use ntg_cpu::{Asm, Program};
use ntg_platform::mem_map;

/// Builds the Cacheloop program: `iterations` passes over a short
/// register-only loop body.
pub fn program(core: usize, iterations: u32) -> Program {
    let mut a = Asm::new();
    a.li(R1, 0);
    a.li(R2, iterations);
    a.li(R3, 0x1234_5678);
    a.li(R4, 0);
    a.label("loop");
    // Register-only body: fits one or two cache lines.
    a.xor(R4, R4, R3);
    a.slli(R3, R3, 1);
    a.ori(R3, R3, 1);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.halt();
    a.assemble(mem_map::private_base(core))
        .expect("Cacheloop program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_platform::{InterconnectChoice, MasterReport, PlatformBuilder};

    #[test]
    fn generates_almost_no_bus_traffic() {
        let mut b = PlatformBuilder::new();
        b.interconnect(InterconnectChoice::Amba);
        b.add_cpu(program(0, 2_000));
        let mut p = b.build().unwrap();
        let report = p.run(1_000_000);
        assert!(report.completed);
        let MasterReport::Cpu(stats) = report.masters[0] else {
            panic!("expected a CPU master")
        };
        assert!(
            stats.refills <= 4,
            "only startup refills expected, saw {}",
            stats.refills
        );
        assert_eq!(stats.bus_reads, 0);
        assert_eq!(stats.bus_writes, 0);
        // ~5 instructions per iteration plus prologue.
        assert!(stats.instructions > 10_000);
    }

    #[test]
    fn runtime_is_independent_of_core_count() {
        // The paper's motivation: Cacheloop has no contention, so adding
        // cores barely changes per-core completion time.
        let run = |cores: usize| {
            let mut b = PlatformBuilder::new();
            b.interconnect(InterconnectChoice::Amba);
            for core in 0..cores {
                b.add_cpu(program(core, 1_000));
            }
            let mut p = b.build().unwrap();
            let report = p.run(1_000_000);
            assert!(report.completed);
            report.execution_time().unwrap()
        };
        let one = run(1);
        let four = run(4);
        let slowdown = four as f64 / one as f64;
        assert!(
            slowdown < 1.05,
            "cacheloop must not contend: {one} vs {four}"
        );
    }
}
