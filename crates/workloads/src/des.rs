//! DES: multiprocessor encryption/decryption workload (Table 2).
//!
//! A DES-style 16-round Feistel cipher: each round XORs the right half
//! with a round key, drives four S-box table lookups (tables live in
//! *cacheable private memory*, exercising data-cache refills exactly the
//! way the paper stresses) and mixes in a rotation. Plaintext blocks are
//! read from uncached shared memory, ciphertext written back to the
//! core's own shared region; a semaphore-protected mailbox update after
//! every block and a final flag barrier generate the synchronisation
//! contention the paper's reactive TG model must reproduce.
//!
//! This is a *substitution* for the original benchmark's full DES (whose
//! bit-level permutation networks add nothing to the traffic pattern);
//! see `DESIGN.md` §3.

use ntg_cpu::isa::{R1, R11, R12, R13, R14, R2, R3, R4, R5, R6, R7, R8, R9};
use ntg_cpu::{Asm, Program};
use ntg_platform::{mem_map, Platform, PlatformBuilder};

use crate::common::{barrier, mutex_acquire, mutex_release};

/// Shared-memory layout (offsets from `SHARED_BASE`).
const MAILBOX_OFF: u32 = 0x0080;
const PT_OFF: u32 = 0x4000;
const CT_OFF: u32 = 0x8000;

const MAILBOX_SEM: u32 = 1;
const ROUNDS: u32 = 16;

/// A small deterministic integer mixer (splitmix-style) for table/key/data
/// generation on both the host and golden-model side.
fn mix(mut x: u32) -> u32 {
    x = x.wrapping_add(0x9E37_79B9);
    x ^= x >> 16;
    x = x.wrapping_mul(0x85EB_CA6B);
    x ^= x >> 13;
    x = x.wrapping_mul(0xC2B2_AE35);
    x ^ (x >> 16)
}

fn sbox_val(table: u32, idx: u32) -> u32 {
    mix(0x50DE_0000u32.wrapping_add(table * 64 + idx))
}

fn key_val(round: u32) -> u32 {
    mix(0x4B4B_0000 + round)
}

fn pt_val(word: u32) -> u32 {
    mix(0x9700_0000 + word)
}

/// One round of the Feistel function (host golden model).
fn feistel(l: u32, r: u32, round: u32) -> (u32, u32) {
    let x = r ^ key_val(round);
    let mut f = sbox_val(0, x & 63);
    f ^= sbox_val(1, (x >> 8) & 63);
    f ^= sbox_val(2, (x >> 16) & 63);
    f ^= sbox_val(3, (x >> 24) & 63);
    f ^= r.rotate_left(3);
    (r, l ^ f)
}

/// Host golden model: encrypts global block `b`, returning (L, R).
pub fn golden_block(b: u32) -> (u32, u32) {
    let mut l = pt_val(b * 2);
    let mut r = pt_val(b * 2 + 1);
    for round in 0..ROUNDS {
        (l, r) = feistel(l, r, round);
    }
    (l, r)
}

/// Address of global block `b`'s ciphertext.
pub fn ct_addr(b: u32) -> u32 {
    mem_map::SHARED_BASE + CT_OFF + b * 8
}

/// Preloads the plaintext blocks into shared memory.
pub fn preload(builder: &mut PlatformBuilder, cores: usize, blocks_per_core: u32) {
    let words = (cores as u32) * blocks_per_core * 2;
    builder.preload_shared(
        mem_map::SHARED_BASE + PT_OFF,
        (0..words).map(pt_val).collect(),
    );
}

/// Builds the DES program for `core` of `cores`.
///
/// # Panics
///
/// Panics if `blocks_per_core` is zero or the plaintext/ciphertext
/// regions exceed shared memory.
pub fn program(core: usize, cores: usize, blocks_per_core: u32) -> Program {
    assert!(blocks_per_core > 0, "each core needs at least one block");
    let total_bytes = (cores as u32) * blocks_per_core * 8;
    assert!(
        PT_OFF + total_bytes <= CT_OFF && CT_OFF + total_bytes <= 0x1_0000,
        "blocks exceed the shared-memory layout"
    );
    let shared = mem_map::SHARED_BASE;
    let first_block = (core as u32) * blocks_per_core;
    let mut a = Asm::new();

    // r7 = S-box base, r8 = key base, r14 = rounds.
    a.li_label(R7, "sboxes");
    a.li_label(R8, "keys");
    a.li(R14, ROUNDS);
    a.li(R1, 0); // local block index
    a.li(R2, blocks_per_core);

    a.label("blockloop");
    // r9 = &PT[global block]; L/R = plaintext halves (uncached reads).
    a.slli(R9, R1, 3);
    a.li(R11, shared + PT_OFF + first_block * 8);
    a.add(R9, R9, R11);
    a.ldw(R4, R9, 0);
    a.ldw(R5, R9, 4);

    a.li(R3, 0);
    a.label("roundloop");
    // r12 = R ^ key[round]
    a.slli(R11, R3, 2);
    a.add(R11, R11, R8);
    a.ldw(R12, R11, 0);
    a.xor(R12, R5, R12);
    // f = S0[x & 63]
    a.andi(R11, R12, 63);
    a.slli(R11, R11, 2);
    a.add(R11, R11, R7);
    a.ldw(R13, R11, 0);
    // f ^= S1[(x >> 8) & 63]
    a.srli(R6, R12, 8);
    a.andi(R6, R6, 63);
    a.slli(R6, R6, 2);
    a.add(R6, R6, R7);
    a.ldw(R6, R6, 256);
    a.xor(R13, R13, R6);
    // f ^= S2[(x >> 16) & 63]
    a.srli(R6, R12, 16);
    a.andi(R6, R6, 63);
    a.slli(R6, R6, 2);
    a.add(R6, R6, R7);
    a.ldw(R6, R6, 512);
    a.xor(R13, R13, R6);
    // f ^= S3[(x >> 24) & 63]
    a.srli(R6, R12, 24);
    a.andi(R6, R6, 63);
    a.slli(R6, R6, 2);
    a.add(R6, R6, R7);
    a.ldw(R6, R6, 768);
    a.xor(R13, R13, R6);
    // f ^= rotl(R, 3)
    a.slli(R6, R5, 3);
    a.srli(R11, R5, 29);
    a.or(R6, R6, R11);
    a.xor(R13, R13, R6);
    // (L, R) = (R, L ^ f)
    a.xor(R6, R4, R13);
    a.mov(R4, R5);
    a.mov(R5, R6);
    a.addi(R3, R3, 1);
    a.bne(R3, R14, "roundloop");

    // Store the ciphertext to this core's own region.
    a.slli(R6, R1, 3);
    a.li(R11, shared + CT_OFF + first_block * 8);
    a.add(R6, R6, R11);
    a.stw(R4, R6, 0);
    a.stw(R5, R6, 4);
    // Per-block semaphore-protected mailbox touch.
    mutex_acquire(&mut a, MAILBOX_SEM, "blk");
    a.li(R11, shared + MAILBOX_OFF);
    a.ldw(R12, R11, 0);
    a.li(R12, core as u32 + 1);
    a.stw(R12, R11, 0);
    mutex_release(&mut a, MAILBOX_SEM);
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "blockloop");

    barrier(&mut a, core, cores, 1, "end");
    a.halt();

    // Constant tables (cacheable private memory).
    a.label("keys");
    a.words(&(0..ROUNDS).map(key_val).collect::<Vec<_>>());
    a.label("sboxes");
    for table in 0..4 {
        a.words(&(0..64).map(|i| sbox_val(table, i)).collect::<Vec<_>>());
    }

    a.assemble(mem_map::private_base(core))
        .expect("DES program assembles")
}

/// Checks every ciphertext block against the golden model.
pub fn verify(platform: &Platform, cores: usize, blocks_per_core: u32) -> Result<(), String> {
    for b in 0..(cores as u32) * blocks_per_core {
        let (l, r) = golden_block(b);
        let got_l = platform.peek_shared(ct_addr(b));
        let got_r = platform.peek_shared(ct_addr(b) + 4);
        if (got_l, got_r) != (l, r) {
            return Err(format!(
                "DES block {b}: got ({got_l:#x}, {got_r:#x}), expected ({l:#x}, {r:#x})"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_platform::InterconnectChoice;

    fn run(cores: usize, blocks: u32) -> Platform {
        let mut b = PlatformBuilder::new();
        b.interconnect(InterconnectChoice::Amba);
        for core in 0..cores {
            b.add_cpu(program(core, cores, blocks));
        }
        preload(&mut b, cores, blocks);
        let mut p = b.build().unwrap();
        let report = p.run(50_000_000);
        assert!(report.completed, "DES did not complete");
        assert!(report.faults.is_empty(), "{:?}", report.faults);
        p
    }

    #[test]
    fn single_core_encrypts_correctly() {
        let p = run(1, 2);
        verify(&p, 1, 2).unwrap();
    }

    #[test]
    fn three_cores_encrypt_their_ranges() {
        let p = run(3, 2);
        verify(&p, 3, 2).unwrap();
    }

    #[test]
    fn feistel_is_reversible() {
        // Running the rounds backwards must recover the plaintext — a
        // sanity check that the golden model really is a Feistel network.
        let (mut l, mut r) = golden_block(0);
        for round in (0..ROUNDS).rev() {
            // Invert (l, r) = (r_prev, l_prev ^ f(r_prev)):
            let r_prev = l;
            let x = r_prev ^ key_val(round);
            let mut f = sbox_val(0, x & 63);
            f ^= sbox_val(1, (x >> 8) & 63);
            f ^= sbox_val(2, (x >> 16) & 63);
            f ^= sbox_val(3, (x >> 24) & 63);
            f ^= r_prev.rotate_left(3);
            let l_prev = r ^ f;
            l = l_prev;
            r = r_prev;
        }
        assert_eq!((l, r), (pt_val(0), pt_val(1)));
    }

    #[test]
    fn blocks_have_distinct_ciphertexts() {
        let a = golden_block(0);
        let b = golden_block(1);
        assert_ne!(a, b);
    }
}
