//! Shared assembly idioms: spin-lock mutexes and flag barriers.
//!
//! Both primitives poll with the tight two-instruction loop
//! (`ldw`; `bne`) whose re-poll period matches the translated TG's
//! `Read`; `If` loop exactly, so replay pacing is cycle-identical.

use ntg_cpu::isa::{R10, R11, R12};
use ntg_cpu::Asm;
use ntg_platform::mem_map;

/// How many flag words one barrier row reserves (max core count).
pub const BARRIER_STRIDE: u32 = 16;

/// Emits a semaphore acquire: spins on the test-and-set cell `sem` until
/// a read returns 1. Clobbers `r10`–`r12`.
///
/// `tag` must be unique within the program (label generation).
pub fn mutex_acquire(a: &mut Asm, sem: u32, tag: &str) {
    a.li(R10, mem_map::semaphore(sem));
    a.li(R11, 1);
    // The two-instruction poll loop must sit inside one I-cache line so
    // no refill can interrupt a poll run (the trace translator collapses
    // each *uninterrupted* run into one Semchk loop).
    a.align(4);
    a.label(format!("acq_{tag}"));
    a.ldw(R12, R10, 0);
    a.bne(R12, R11, format!("acq_{tag}"));
}

/// Emits a semaphore release (writes 1 to the cell). Clobbers
/// `r10`/`r11`.
pub fn mutex_release(a: &mut Asm, sem: u32) {
    a.li(R10, mem_map::semaphore(sem));
    a.li(R11, 1);
    a.stw(R11, R10, 0);
}

/// Emits a flag barrier across `cores` cores.
///
/// Core `core` writes 1 to its own flag in barrier row `barrier`, then
/// polls every other core's flag until it reads 1. Each core writes only
/// its own flag (value 1), so the traffic's data values are
/// interleaving-independent. Barrier rows are single-use; use a fresh
/// `barrier` id per synchronisation point. Clobbers `r10`–`r12`.
pub fn barrier(a: &mut Asm, core: usize, cores: usize, barrier: u32, tag: &str) {
    let flag = |c: usize| mem_map::sync_flag(barrier * BARRIER_STRIDE + c as u32);
    a.li(R11, 1);
    a.li(R10, flag(core));
    a.stw(R11, R10, 0);
    for other in 0..cores {
        if other == core {
            continue;
        }
        a.li(R10, flag(other));
        a.align(4); // poll loop inside one I-cache line, as in mutex_acquire
        a.label(format!("bar_{tag}_{other}"));
        a.ldw(R12, R10, 0);
        a.bne(R12, R11, format!("bar_{tag}_{other}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_platform::{InterconnectChoice, PlatformBuilder};

    #[test]
    fn barrier_synchronises_three_cores() {
        // Each core spins a different amount, then barriers, then writes
        // a completion stamp. All stamps must come after every flag set.
        let mut b = PlatformBuilder::new();
        b.interconnect(InterconnectChoice::Amba);
        for core in 0..3 {
            let mut a = Asm::new();
            // Unequal compute before the barrier.
            let spins = 50 * (core as i32 + 1);
            a.li(ntg_cpu::isa::R1, 0);
            a.li(ntg_cpu::isa::R2, spins as u32);
            a.label("spin");
            a.addi(ntg_cpu::isa::R1, ntg_cpu::isa::R1, 1);
            a.bne(ntg_cpu::isa::R1, ntg_cpu::isa::R2, "spin");
            barrier(&mut a, core, 3, 0, "b0");
            a.halt();
            b.add_cpu(a.assemble(mem_map::private_base(core)).unwrap());
        }
        let mut p = b.build().unwrap();
        let report = p.run(1_000_000);
        assert!(report.completed, "barrier must not deadlock");
        let finishes: Vec<_> = report.finish_cycles.iter().flatten().copied().collect();
        // All cores leave the barrier within a small window even though
        // their compute phases differ by hundreds of cycles.
        let spread = finishes.iter().max().unwrap() - finishes.iter().min().unwrap();
        assert!(
            spread < 120,
            "cores left the barrier far apart: {finishes:?}"
        );
    }

    #[test]
    fn mutex_provides_exclusion() {
        // Two cores increment a shared counter 20 times each under the
        // lock; without exclusion some increments would be lost.
        let counter = mem_map::SHARED_BASE + 0x100;
        let mut b = PlatformBuilder::new();
        b.interconnect(InterconnectChoice::Amba);
        for core in 0..2 {
            let mut a = Asm::new();
            a.li(ntg_cpu::isa::R1, 0);
            a.li(ntg_cpu::isa::R2, 20);
            a.label("loop");
            mutex_acquire(&mut a, 0, "m");
            a.li(ntg_cpu::isa::R3, counter);
            a.ldw(ntg_cpu::isa::R4, ntg_cpu::isa::R3, 0);
            a.addi(ntg_cpu::isa::R4, ntg_cpu::isa::R4, 1);
            a.stw(ntg_cpu::isa::R4, ntg_cpu::isa::R3, 0);
            mutex_release(&mut a, 0);
            a.addi(ntg_cpu::isa::R1, ntg_cpu::isa::R1, 1);
            a.bne(ntg_cpu::isa::R1, ntg_cpu::isa::R2, "loop");
            a.halt();
            b.add_cpu(a.assemble(mem_map::private_base(core)).unwrap());
        }
        let mut p = b.build().unwrap();
        let report = p.run(5_000_000);
        assert!(report.completed);
        assert_eq!(p.peek_shared(counter), 40, "all increments preserved");
        assert_eq!(p.peek_semaphore(0), 1, "lock released at the end");
    }
}
