//! Hand-written traffic generators: the paper's §7 suggests using the TG
//! "in association with manually written programs to generate traffic
//! patterns typical of IP cores still in the design phase".
//!
//! Here a synthetic streaming DMA-like master is written directly in
//! `.tgp` text, parsed, assembled and run against real memory on two
//! interconnects — no CPU model or trace involved. Like the paper's
//! test-chip programs it loops forever (`Jump(stream)`), so we measure
//! achieved bandwidth over a fixed simulation window instead of waiting
//! for completion.
//!
//! Run with: `cargo run --release --example custom_traffic`

use ntg::platform::{InterconnectChoice, PlatformBuilder};
use ntg::tg::{assemble, tgp};

/// A burst-streaming master: reads a 4-word line from shared memory,
/// writes one result word, idles a while, repeats forever.
const STREAMER: &str = r"
; hand-written synthetic streamer (no trace involved)
MASTER[0,0]
REGISTER r2 0x19001000    ; source line (shared memory)
REGISTER r3 0x00000042    ; payload
REGISTER r4 0x00000004    ; burst length
REGISTER r5 0x19002000    ; destination
BEGIN
stream:
  BurstRead(r2, r4)
  Write(r5, r3)
  Idle(10)
  Jump(stream)
END
";

const WINDOW: u64 = 20_000;

fn main() {
    let program = tgp::from_tgp(STREAMER).expect("valid .tgp");
    println!(
        "parsed hand-written .tgp: {} instructions, {} register inits\n",
        program.len_instrs(),
        program.inits.len()
    );
    let image = assemble(&program).expect("assembles");

    println!(
        "{:<9} {:>14} {:>18}",
        "fabric", "transactions", "words/1k cycles"
    );
    for fabric in [
        InterconnectChoice::Amba,
        InterconnectChoice::Crossbar,
        InterconnectChoice::Xpipes,
        InterconnectChoice::Ideal,
    ] {
        let mut b = PlatformBuilder::new();
        b.interconnect(fabric);
        b.add_tg(image.clone());
        let mut p = b.build().expect("build");
        let report = p.run(WINDOW); // endless generator: fixed window
        assert!(!report.completed, "the streamer never halts by design");
        let tx = p.interconnect_transactions();
        // Each loop iteration moves 4 read words + 1 written word.
        let words = tx * 5 / 2;
        println!(
            "{:<9} {:>14} {:>18.1}",
            fabric.to_string(),
            tx,
            words as f64 / (WINDOW as f64 / 1000.0),
        );
        assert_eq!(p.peek_shared(0x1900_2000), 0x42, "payload landed");
    }
    println!(
        "\nThe same synthetic master runs unmodified on every interconnect \
         model — a traffic stimulus for fabrics whose IP cores do not \
         exist yet (paper §7)."
    );
}
