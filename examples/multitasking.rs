//! The paper's §7 future work, implemented: multiple TG task programs
//! dynamically scheduled on a *single* master socket by a preemptive
//! round-robin timeslicer, with modelled context-switch costs.
//!
//! Two independent workloads are traced on a two-core platform, then
//! both translated programs are replayed *on one socket* of a single-
//! master platform — emulating an OS multiplexing two tasks onto one
//! processor — at several context-switch price points.
//!
//! Run with: `cargo run --release --example multitasking`

use ntg::cpu::isa::{R0, R1, R2, R3};
use ntg::cpu::Asm;
use ntg::platform::{mem_map, InterconnectChoice, PlatformBuilder};
use ntg::tg::{
    assemble, TgItem, TgProgram, TgSymInstr, TimesliceConfig, TraceTranslator, TranslationMode,
};

/// Relocates a task's private-memory references onto socket 0's private
/// region: the tasks originally ran on different cores, but under the
/// multitasking socket they share processor 0's memory.
fn relocate_private(program: &mut TgProgram, from_core: usize) {
    let from = mem_map::private_base(from_core);
    let to = mem_map::private_base(0);
    let stride = mem_map::PRIVATE_STRIDE;
    let fix = |v: &mut u32| {
        if *v >= from && *v < from + stride {
            *v = to + (*v - from);
        }
    };
    for (_, v) in &mut program.inits {
        fix(v);
    }
    for item in &mut program.items {
        if let TgItem::Instr(TgSymInstr::SetRegister(_, v)) = item {
            fix(v);
        }
    }
}

/// A task: interleaves compute bursts with stores to its own shared
/// slot.
fn task_program(core: usize, rounds: u32) -> ntg::cpu::Program {
    let mut a = Asm::new();
    a.li(R1, 0);
    a.li(R2, mem_map::SHARED_BASE + core as u32 * 8);
    a.label("round");
    a.li(R3, 40);
    a.label("work");
    a.addi(R3, R3, -1);
    a.bne(R3, R0, "work");
    a.addi(R1, R1, 1);
    a.stw(R1, R2, 0);
    a.li(R3, rounds);
    a.bne(R1, R3, "round");
    a.halt();
    a.assemble(mem_map::private_base(core)).unwrap()
}

fn main() {
    // 1. Trace each task on its own core of a reference platform.
    let mut b = PlatformBuilder::new();
    b.interconnect(InterconnectChoice::Amba).tracing(true);
    b.add_cpu(task_program(0, 20));
    b.add_cpu(task_program(1, 20));
    let mut reference = b.build().expect("build");
    let ref_report = reference.run(1_000_000);
    assert!(ref_report.completed);
    println!(
        "reference (two cores, one task each): {} cycles",
        ref_report.execution_time().unwrap()
    );

    let translator = TraceTranslator::new(reference.translator_config(TranslationMode::Reactive));
    // Both tasks will run on socket 0, so their traces are translated
    // as-is; addresses already refer to their original slots.
    let images: Vec<_> = (0..2)
        .map(|c| {
            let mut program = translator.translate(&reference.trace(c).unwrap()).unwrap();
            relocate_private(&mut program, c);
            assemble(&program).unwrap()
        })
        .collect();

    // 2. Replay both tasks on ONE socket, sweeping the context-switch
    //    penalty.
    println!(
        "\n{:<26} {:>12} {:>10} {:>14}",
        "scheduler", "cycles", "switches", "switch cycles"
    );
    for (quantum, penalty) in [(200u32, 0u32), (200, 25), (50, 25), (50, 100)] {
        let mut b = PlatformBuilder::new();
        b.interconnect(InterconnectChoice::Amba);
        b.add_tg_multitask(
            images.clone(),
            TimesliceConfig {
                quantum,
                switch_penalty: penalty,
            },
        );
        let mut p = b.build().expect("build");
        let report = p.run(10_000_000);
        assert!(report.completed, "multitasking socket must finish");
        assert!(report.faults.is_empty(), "{:?}", report.faults);
        // Both tasks' final stores must have landed.
        assert_eq!(p.peek_shared(mem_map::SHARED_BASE), 20);
        assert_eq!(p.peek_shared(mem_map::SHARED_BASE + 8), 20);
        let sched = p.scheduler_stats(0).expect("socket 0 is multitasking");
        println!(
            "quantum {quantum:>4}, penalty {penalty:>3} {:>12} {:>10} {:>14}",
            report.execution_time().unwrap(),
            sched.switches,
            sched.switch_cycles,
        );
    }
    println!(
        "\nShorter quanta and pricier switches stretch the single-socket \
         schedule — the context-switching cost model the paper's §7 calls \
         for."
    );
}
