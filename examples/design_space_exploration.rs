//! Design-space exploration — the paper's headline use case: collect one
//! reference trace, then evaluate several cycle-true interconnect
//! candidates quickly by simulating traffic generators instead of cores.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use ntg::platform::InterconnectChoice;
use ntg::tg::{assemble, TraceTranslator, TranslationMode};
use ntg::workloads::Workload;

fn main() {
    let workload = Workload::MpMatrix { n: 16 };
    let cores = 4;

    // One reference simulation with tracing (the expensive step, paid
    // once).
    let mut reference = workload
        .build_platform(cores, InterconnectChoice::Amba, true)
        .expect("build reference");
    let ref_report = reference.run(100_000_000);
    assert!(ref_report.completed);
    println!(
        "reference: {} {}P on AMBA, {} cycles (wall {:?})\n",
        workload.name(),
        cores,
        ref_report.execution_time().expect("halted"),
        ref_report.wall_time
    );

    let translator = TraceTranslator::new(reference.translator_config(TranslationMode::Reactive));
    let images: Vec<_> = (0..cores)
        .map(|c| {
            assemble(
                &translator
                    .translate(&reference.trace(c).expect("traced"))
                    .expect("translate"),
            )
            .expect("assemble")
        })
        .collect();

    // Fast cycle-true evaluation of each candidate fabric.
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "fabric", "cycles", "sim wall", "verdict"
    );
    let mut best: Option<(InterconnectChoice, u64)> = None;
    for fabric in [
        InterconnectChoice::Amba,
        InterconnectChoice::Crossbar,
        InterconnectChoice::Xpipes,
        InterconnectChoice::Ideal,
    ] {
        let mut p = workload
            .build_tg_platform(images.clone(), fabric, false)
            .expect("build candidate");
        let report = p.run(100_000_000);
        assert!(report.completed);
        let cycles = report.execution_time().expect("halted");
        // Functional check: the TGs must reproduce the golden memory
        // image on every fabric.
        workload.verify(&p, cores).expect("golden result");
        let improves = best.map(|(_, c)| cycles < c).unwrap_or(true);
        if improves {
            best = Some((fabric, cycles));
        }
        println!(
            "{:<10} {:>12} {:>11.3?} {:>12}",
            fabric.to_string(),
            cycles,
            report.wall_time,
            if improves { "best so far" } else { "" }
        );
    }
    let (fabric, cycles) = best.expect("at least one candidate");
    println!(
        "\npick: {fabric} at {cycles} cycles — chosen from cycle-true \
         simulations that each cost a fraction of the reference run."
    );
}
