//! The paper's Figure 3 as a library walk-through: a `.trc` trace
//! listing, the `.tgp` program derived from it, the binary `.bin` image,
//! and the disassembly round trip.
//!
//! The trace here is parsed from text (it could equally come from a
//! traced simulation — see `examples/quickstart.rs`), demonstrating that
//! all the tool-flow formats are plain files a user can inspect, diff
//! and version.
//!
//! Run with: `cargo run --example trace_to_program`

use ntg::tg::{assemble, disassemble, tgp, TraceTranslator, TranslatorConfig};
use ntg::trace::{MasterTrace, TraceStats};

/// A paper-style trace: two plain accesses, then semaphore polling.
const TRC: &str = "\
; Simple RD/WR then polling a semaphore
MASTER 0
PERIOD_NS 5
REQ RD 0x00000104 @55
ACK @60
RESP 0x088000f0 @75
REQ WR 0x00000020 0x00000111 @90
ACK @95
REQ RD 0x00000031 @140
ACK @145
RESP 0x00002236 @165
REQ RD 0x000000ff @210
ACK @215
RESP 0x00000000 @270
REQ RD 0x000000ff @285
ACK @290
RESP 0x00000000 @310
REQ RD 0x000000ff @315
ACK @320
RESP 0x00000001 @330
HALT @400
END
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse and summarise the trace.
    let trace = MasterTrace::from_trc(TRC)?;
    let stats = TraceStats::from_trace(&trace)?;
    println!(
        "trace: {} transactions ({} reads, {} writes), mean read latency {:.0} ns\n",
        stats.transactions(),
        stats.reads,
        stats.writes,
        stats.read_latency_ns.mean().unwrap_or(0.0)
    );

    // Translate with platform knowledge: the semaphore at 0xF8..0x100
    // is pollable (the data accesses at 0x104/0x31 must stay outside!).
    let translator = TraceTranslator::new(TranslatorConfig {
        pollable: vec![(0xF8, 0x8)],
        ..TranslatorConfig::default()
    });
    let program = translator.translate(&trace)?;
    println!("=== .tgp ===\n{}", tgp::to_tgp(&program));

    // Assemble to the binary image the TG instruction memory loads.
    let image = assemble(&program)?;
    let bytes = image.to_bytes();
    println!(
        "=== .bin === {} instructions, {} bytes (magic {:?})\n",
        image.instrs.len(),
        bytes.len(),
        &bytes[0..4],
    );

    // Round trip: disassemble and re-assemble; must match exactly.
    let round = assemble(&disassemble(&image))?;
    assert_eq!(round, image, "disassembly must round-trip");
    println!("disassemble → assemble round trip: OK");
    Ok(())
}
