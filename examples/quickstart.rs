//! Quickstart: the complete traffic-generator flow in ~60 lines.
//!
//! 1. write a small program for a Srisc CPU core;
//! 2. run the *reference* simulation with OCP tracing enabled;
//! 3. translate the trace into a TG program and assemble it;
//! 4. replay with a traffic generator instead of the core;
//! 5. compare cycle counts — the TG reproduces the core's communication
//!    behaviour cycle-accurately while simulating much faster.
//!
//! Run with: `cargo run --release --example quickstart`

use ntg::cpu::isa::{R1, R2, R3};
use ntg::cpu::Asm;
use ntg::platform::{mem_map, InterconnectChoice, PlatformBuilder};
use ntg::tg::{assemble, tgp, TraceTranslator, TranslationMode};

fn main() {
    // 1. A tiny workload: compute, store to shared memory, read it back.
    let mut a = Asm::new();
    a.li(R1, 0);
    a.li(R2, 1000);
    a.label("loop");
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    a.li(R3, mem_map::SHARED_BASE);
    a.stw(R1, R3, 0);
    a.ldw(R2, R3, 0);
    a.halt();
    let program = a.assemble(mem_map::private_base(0)).expect("assemble");

    // 2. Reference simulation (CPU core, AMBA bus, tracing on).
    let mut reference = PlatformBuilder::new()
        .interconnect(InterconnectChoice::Amba)
        .tracing(true)
        .add_cpu(program)
        .build()
        .expect("build reference platform");
    let ref_report = reference.run(1_000_000);
    assert!(ref_report.completed);
    let trace = reference.trace(0).expect("tracing was enabled");
    println!(
        "reference: {} cycles, {} OCP events recorded",
        ref_report.execution_time().expect("core halted"),
        trace.events.len()
    );

    // 3. Translate and assemble.
    let translator = TraceTranslator::new(reference.translator_config(TranslationMode::Reactive));
    let tg_program = translator.translate(&trace).expect("translate");
    println!(
        "\n--- derived TG program (.tgp) ---\n{}",
        tgp::to_tgp(&tg_program)
    );
    let image = assemble(&tg_program).expect("assemble TG program");

    // 4. Replay with a traffic generator in the core's socket.
    let mut replay = PlatformBuilder::new()
        .interconnect(InterconnectChoice::Amba)
        .add_tg(image)
        .build()
        .expect("build TG platform");
    let tg_report = replay.run(1_000_000);
    assert!(tg_report.completed);

    // 5. Compare.
    let r = ref_report.execution_time().expect("halted");
    let t = tg_report.execution_time().expect("halted");
    println!("reference core : {r} cycles");
    println!("traffic gen    : {t} cycles");
    println!(
        "cycle error    : {:.3}%",
        (t as f64 - r as f64).abs() / r as f64 * 100.0
    );
    println!(
        "shared word    : {:#x} (written through the TG's replayed store)",
        replay.peek_shared(mem_map::SHARED_BASE)
    );
}
