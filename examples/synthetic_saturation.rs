//! Injection-rate saturation in ~40 lines: sweep the offered rate λ of
//! uniform-random Bernoulli traffic on one fabric and watch the
//! accepted rate pin at the saturation throughput while latency climbs.
//!
//! `SyntheticTg` masters schedule packets blind to back-pressure, so
//! "offered" is a property of the spec and "accepted" is a measurement;
//! the growing gap between the two columns *is* the saturation curve.
//! The campaign-scale version of this sweep (two fabrics, three
//! patterns) is `ntg-sweep --preset saturation`.
//!
//! Run with: `cargo run --release --example synthetic_saturation`

use ntg::platform::InterconnectChoice;
use ntg::workloads::synthetic::{build_synthetic_platform, SyntheticSpec};

const CORES: usize = 8;
const PACKETS: u64 = 256;
const SEED: u64 = 7;
const MAX_CYCLES: u64 = 2_000_000;

fn main() {
    let fabric = InterconnectChoice::Xpipes;
    println!("uniform+bernoulli traffic, {CORES} cores on {fabric}, {PACKETS} packets/master\n");
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>5}",
        "rate", "offered", "accepted", "latency", "sat"
    );
    for rate in [0.02, 0.05, 0.08, 0.12, 0.16, 0.2] {
        let spec: SyntheticSpec = format!("uniform+bernoulli@{rate}/4")
            .parse()
            .expect("valid descriptor");
        let mut p =
            build_synthetic_platform(CORES, fabric, spec, PACKETS, SEED).expect("build platform");
        let report = p.run(MAX_CYCLES);
        assert!(report.completed, "raise MAX_CYCLES");
        let (offered, accepted) = report
            .synthetic_rates()
            .expect("synthetic masters report rates");
        let latency = report.latency.map_or(0.0, |(mean, _max)| mean);
        let sat = if accepted < 0.99 * offered {
            "SAT"
        } else {
            "ok"
        };
        println!("{rate:>6} {offered:>9.4} {accepted:>9.4} {latency:>9.2} {sat:>5}");
    }
}
