//! Reactive traffic in action: two masters race for a hardware
//! semaphore (the paper's Figure 2(b) scenario), and the translated
//! traffic generators *regenerate* the polling — the number of polls
//! adapts to the interconnect instead of being replayed verbatim.
//!
//! Run with: `cargo run --release --example semaphore_contention`

use ntg::cpu::isa::{R0, R1, R2, R3, R4};
use ntg::cpu::Asm;
use ntg::ocp::OcpCmd;
use ntg::platform::{mem_map, InterconnectChoice, Platform, PlatformBuilder};
use ntg::tg::{assemble, TraceTranslator, TranslationMode};
use ntg::trace::{chrome_trace_json, MasterTrace};

/// Delay, grab the semaphore, hold it, release, halt.
fn contender(core: usize, start_delay: u32, hold: u32) -> ntg::cpu::Program {
    let sem = mem_map::semaphore(0);
    let mut a = Asm::new();
    a.li(R4, start_delay);
    a.label("d");
    a.addi(R4, R4, -1);
    a.bne(R4, R0, "d");
    a.li(R2, sem);
    a.li(R1, 1);
    a.align(4); // keep the poll loop inside one I-cache line
    a.label("acq");
    a.ldw(R3, R2, 0);
    a.bne(R3, R1, "acq");
    a.li(R4, hold);
    a.label("h");
    a.addi(R4, R4, -1);
    a.bne(R4, R0, "h");
    a.stw(R1, R2, 0);
    a.halt();
    a.assemble(mem_map::private_base(core)).expect("assemble")
}

/// Exports both masters' OCP timelines as a Chrome `trace_event` file
/// (open in `chrome://tracing` or Perfetto) — Figure 2(b) as an
/// interactive artifact instead of a printed event list.
fn export_timeline(name: &str, p: &Platform) {
    let traces = [p.trace(0).expect("traced"), p.trace(1).expect("traced")];
    let json = chrome_trace_json(&traces).expect("well-formed traces");
    let path = format!("{name}.trace.json");
    std::fs::write(&path, json).expect("write timeline");
    println!("  timeline -> {path}");
}

fn count_polls(trace: &MasterTrace) -> usize {
    trace
        .transactions()
        .expect("well-formed")
        .iter()
        .filter(|t| t.cmd == OcpCmd::Read && t.addr == mem_map::semaphore(0))
        .count()
}

fn run_traced(build: impl Fn(&mut PlatformBuilder), fabric: InterconnectChoice) -> (Platform, u64) {
    let mut b = PlatformBuilder::new();
    b.interconnect(fabric).tracing(true);
    build(&mut b);
    let mut p = b.build().expect("build");
    let report = p.run(1_000_000);
    assert!(report.completed, "contenders must not deadlock");
    let cycles = report.execution_time().expect("halted");
    (p, cycles)
}

fn main() {
    // Reference: CPU cores on the AMBA bus. Master 0 arrives first and
    // holds the lock for a long time; master 1 polls meanwhile.
    let (reference, ref_cycles) = run_traced(
        |b| {
            b.add_cpu(contender(0, 5, 400));
            b.add_cpu(contender(1, 40, 10));
        },
        InterconnectChoice::Amba,
    );
    let ref_polls = count_polls(&reference.trace(1).expect("traced"));
    println!("reference (AMBA): {ref_cycles} cycles, M1 polled {ref_polls}x");
    export_timeline("semaphore_contention.reference", &reference);

    // Translate both masters.
    let translator = TraceTranslator::new(reference.translator_config(TranslationMode::Reactive));
    let images: Vec<_> = (0..2)
        .map(|c| {
            let p = translator
                .translate(&reference.trace(c).expect("traced"))
                .expect("translate");
            assemble(&p).expect("assemble")
        })
        .collect();

    // Replay on two different interconnects, tracing the TGs themselves
    // so we can count how many polls they actually issued.
    for fabric in [InterconnectChoice::Amba, InterconnectChoice::Xpipes] {
        let mut b = PlatformBuilder::new();
        b.interconnect(fabric).tracing(true);
        for image in &images {
            b.add_tg(image.clone());
        }
        let mut p = b.build().expect("build");
        let report = p.run(1_000_000);
        assert!(report.completed);
        let polls = count_polls(&p.trace(1).expect("traced"));
        println!(
            "TG replay on {:<7}: {} cycles, M1 polled {polls}x",
            fabric.to_string(),
            report.execution_time().expect("halted"),
        );
        export_timeline(&format!("semaphore_contention.tg-{fabric}"), &p);
    }
    println!(
        "\nThe Semchk loop re-polls until the semaphore is actually free, so \
         the poll count adapts to each interconnect's timing — reactive \
         generation, not replay (paper §3)."
    );
}
