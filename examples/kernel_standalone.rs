//! Using the generic simulation kernel directly — no platform builder.
//!
//! Everything in `ntg` is an ordinary [`Component`], so custom systems
//! can be assembled from parts and driven by the generic
//! [`Simulator`] engine: here, a stochastic traffic source talks straight
//! to a slave TG (the paper's §4 entity 2) over a bare OCP link — the
//! smallest possible "system".
//!
//! Run with: `cargo run --release --example kernel_standalone`
//!
//! [`Component`]: ntg::sim::Component
//! [`Simulator`]: ntg::sim::Simulator

use ntg::ocp::{LinkArena, MasterId};
use ntg::sim::{RunOutcome, Simulator};
use ntg::tg::{GapDistribution, StochasticConfig, StochasticTg, TgSlave, TgSlaveBehavior};

fn main() {
    let mut net = LinkArena::new();
    let (mport, sport) = net.channel("link", MasterId(0));

    let source = StochasticTg::new(
        "source",
        mport,
        StochasticConfig {
            seed: 2026,
            ranges: vec![(0x0, 0x1000)],
            write_fraction: 0.5,
            burst_fraction: 0.25,
            gap: GapDistribution::Geometric { mean: 8 },
            transactions: 500,
        },
    );
    let sink = TgSlave::new("sink", 0x0, 0x1000, TgSlaveBehavior::Memory, sport);

    // The simulator owns the link arena and lends it to every tick.
    let mut sim = Simulator::with_ctx(net);
    sim.add(Box::new(source));
    sim.add(Box::new(sink));

    let outcome = sim.run_until_idle(1_000_000);
    assert_eq!(outcome, RunOutcome::Idle, "traffic must drain");
    println!(
        "500 stochastic transactions drained through a bare OCP link in {} cycles",
        sim.now()
    );
    println!(
        "components: {:?} — any mix of ntg parts (cores, TGs, buses, devices) composes the same way",
        (0..sim.len()).map(|i| sim.component(i).name().to_owned()).collect::<Vec<_>>()
    );
}
