//! `ntg` — traffic-generator-based fast Network-on-Chip simulation.
//!
//! A from-scratch Rust reproduction of *Mahadevan, Angiolini, Storgaard,
//! Olsen, Sparsø, Madsen: "A Network Traffic Generator Model for Fast
//! Network-on-Chip Simulation", DATE 2005* (DOI 10.1109/DATE.2005.22),
//! including every substrate the paper depends on: a cycle-true
//! multiprocessor SoC simulation platform in the style of MPARM, OCP-like
//! core/network interfaces, AMBA-, ×pipes- and STBus-like interconnect
//! models, CPU cores with caches, memories and hardware semaphores — plus
//! the paper's contribution, the programmable **Traffic Generator (TG)**
//! and its trace → program flow.
//!
//! This umbrella crate re-exports the individual `ntg-*` crates under
//! short module names so applications need a single dependency:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sim`] | `ntg-sim` | cycle-driven simulation kernel |
//! | [`ocp`] | `ntg-ocp` | OCP-style interface protocol and channels |
//! | [`mem`] | `ntg-mem` | address map, RAM slaves, semaphore bank |
//! | [`cpu`] | `ntg-cpu` | Srisc core model, caches, assembler DSL |
//! | [`noc`] | `ntg-noc` | AMBA / ×pipes / crossbar / ideal interconnects |
//! | [`trace`] | `ntg-trace` | OCP trace capture and `.trc` format |
//! | [`tg`] | `ntg-core` | TG ISA, assembler, translator, TG core |
//! | [`platform`] | `ntg-platform` | MPARM-like platform assembly |
//! | [`workloads`] | `ntg-workloads` | the four paper benchmarks |
//! | [`explore`] | `ntg-explore` | sweep campaigns, TG artifact cache, JSONL results |
//! | [`report`] | `ntg-report` | Table-2 views, rankings, Pareto, saturation curves |
//! | [`serve`] | `ntg-serve` | campaign job server + tiered remote artifact store |
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for the complete reference → trace →
//! translate → TG-replay flow on a two-core platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ntg_core as tg;
pub use ntg_cpu as cpu;
pub use ntg_explore as explore;
pub use ntg_mem as mem;
pub use ntg_noc as noc;
pub use ntg_ocp as ocp;
pub use ntg_platform as platform;
pub use ntg_report as report;
pub use ntg_serve as serve;
pub use ntg_sim as sim;
pub use ntg_trace as trace;
pub use ntg_workloads as workloads;
